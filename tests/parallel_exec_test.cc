/**
 * @file
 * Tests for the parallel block execution engine: LaunchResult (and all
 * device-visible state) must be bit-identical at any worker count, and
 * an injected crash must abort the in-flight grid exactly as it does
 * under single-threaded execution.
 */

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/lp_config.h"
#include "core/runtime.h"
#include "workloads/megakv.h"
#include "workloads/workload.h"

namespace gpulp {
namespace {

/** Worker counts every determinism test sweeps. */
const uint32_t kWorkerCounts[] = {1, 2, 8};

/** FNV-1a over a byte range, used to fingerprint device memory. */
uint64_t
fnv1a(const char *data, size_t len)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < len; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Everything one run produced that must not depend on worker count. */
struct Observed {
    LaunchResult result;
    StoreStats store;
    uint64_t arena_hash = 0;

    void
    expectIdentical(const Observed &other, const char *what) const
    {
        EXPECT_EQ(result.cycles, other.result.cycles) << what;
        EXPECT_EQ(result.critical_path, other.result.critical_path)
            << what;
        EXPECT_EQ(result.bandwidth_cycles, other.result.bandwidth_cycles)
            << what;
        EXPECT_EQ(result.crashed, other.result.crashed) << what;
        EXPECT_EQ(result.blocks_completed, other.result.blocks_completed)
            << what;
        EXPECT_EQ(result.traffic.global_loads,
                  other.result.traffic.global_loads)
            << what;
        EXPECT_EQ(result.traffic.global_stores,
                  other.result.traffic.global_stores)
            << what;
        EXPECT_EQ(result.traffic.global_atomics,
                  other.result.traffic.global_atomics)
            << what;
        EXPECT_EQ(result.traffic.bytes_read, other.result.traffic.bytes_read)
            << what;
        EXPECT_EQ(result.traffic.bytes_written,
                  other.result.traffic.bytes_written)
            << what;
        EXPECT_EQ(result.traffic.atomic_conflicts,
                  other.result.traffic.atomic_conflicts)
            << what;
        EXPECT_EQ(result.traffic.atomic_wait_cycles,
                  other.result.traffic.atomic_wait_cycles)
            << what;
        EXPECT_EQ(store.inserts, other.store.inserts) << what;
        EXPECT_EQ(store.collisions, other.store.collisions) << what;
        EXPECT_EQ(store.probes, other.store.probes) << what;
        EXPECT_EQ(store.kicks, other.store.kicks) << what;
        EXPECT_EQ(store.stash_inserts, other.store.stash_inserts) << what;
        EXPECT_EQ(arena_hash, other.arena_hash) << what;
    }
};

DeviceParams
paramsWithWorkers(uint32_t workers)
{
    DeviceParams p;
    p.num_workers = workers;
    return p;
}

/**
 * Run a named workload baseline + LP(quad, lock-free) at the given
 * worker count on a fresh device and fingerprint everything.
 */
Observed
runWorkloadAt(const std::string &name, double scale, uint32_t workers)
{
    Device dev(paramsWithWorkers(workers));
    auto w = makeWorkload(name, scale);
    w->setup(dev);

    Observed o;
    o.result = runBaseline(dev, *w);
    std::string why;
    EXPECT_TRUE(w->verify(&why)) << name << " @" << workers << ": " << why;

    LpConfig cfg = LpConfig::naive(TableKind::QuadProbe);
    cfg.load_factor = w->quadLoadFactor();
    LpRuntime lp(dev, cfg, w->launchConfig());
    LaunchResult lp_result = runWithLp(dev, *w, lp);
    // Fold the LP run into the fingerprint: every counter of both runs
    // has to match across worker counts.
    o.result.cycles += lp_result.cycles;
    o.result.critical_path += lp_result.critical_path;
    o.result.bandwidth_cycles += lp_result.bandwidth_cycles;
    o.result.blocks_completed += lp_result.blocks_completed;
    o.result.traffic.global_loads += lp_result.traffic.global_loads;
    o.result.traffic.global_stores += lp_result.traffic.global_stores;
    o.result.traffic.global_atomics += lp_result.traffic.global_atomics;
    o.result.traffic.bytes_read += lp_result.traffic.bytes_read;
    o.result.traffic.bytes_written += lp_result.traffic.bytes_written;
    o.result.traffic.atomic_conflicts +=
        lp_result.traffic.atomic_conflicts;
    o.result.traffic.atomic_wait_cycles +=
        lp_result.traffic.atomic_wait_cycles;
    o.store = lp.store().stats();
    o.arena_hash = fnv1a(dev.mem().raw(0), dev.mem().used());
    return o;
}

TEST(ParallelExecTest, TmmBitIdenticalAcrossWorkerCounts)
{
    Observed ref = runWorkloadAt("tmm", 0.01, 1);
    for (uint32_t workers : kWorkerCounts) {
        if (workers == 1)
            continue;
        Observed got = runWorkloadAt("tmm", 0.01, workers);
        got.expectIdentical(
            ref, ("tmm @" + std::to_string(workers) + " workers").c_str());
    }
}

TEST(ParallelExecTest, ContendedWorkloadBitIdenticalAcrossWorkerCounts)
{
    // TPACF funnels every block's commit through the same hashed table
    // with real collisions — the adversarial case for rank ordering.
    Observed ref = runWorkloadAt("tpacf", 0.05, 1);
    for (uint32_t workers : kWorkerCounts) {
        if (workers == 1)
            continue;
        Observed got = runWorkloadAt("tpacf", 0.05, workers);
        got.expectIdentical(
            ref,
            ("tpacf @" + std::to_string(workers) + " workers").c_str());
    }
}

/** One MEGA-KV insert+search round; returns result array + fingerprints. */
struct MegaKvRound {
    LaunchResult insert_result;
    LaunchResult search_result;
    std::vector<uint32_t> results;
    uint64_t table_hash = 0;
};

MegaKvRound
runMegaKvAt(uint32_t workers)
{
    Device dev(paramsWithWorkers(workers));
    // Small table + duplicate keys: bucket contention across blocks is
    // the point, so CAS winners and in-place updates must follow rank
    // order to be reproducible.
    MegaKv kv(dev, /*buckets=*/128, /*batch_ops=*/2048);

    std::vector<std::pair<uint32_t, uint32_t>> batch;
    batch.reserve(kv.batchOps());
    for (uint32_t i = 0; i < kv.batchOps(); ++i) {
        uint32_t key = 1 + (i * 2654435761u) % 512; // heavy duplication
        batch.emplace_back(key, i + 1);
    }
    kv.stageInserts(batch);

    MegaKvRound round;
    round.insert_result = dev.launch(
        kv.launchConfig(),
        [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });

    std::vector<uint32_t> queries;
    queries.reserve(kv.batchOps());
    for (uint32_t i = 0; i < kv.batchOps(); ++i)
        queries.push_back(1 + (i * 40503u) % 768); // hits and misses
    kv.stageKeys(queries);
    round.search_result = dev.launch(
        kv.launchConfig(),
        [&](ThreadCtx &t) { kv.searchKernel(t, nullptr); });

    round.results.reserve(kv.batchOps());
    for (uint32_t i = 0; i < kv.batchOps(); ++i)
        round.results.push_back(kv.resultAt(i));
    round.table_hash = fnv1a(dev.mem().raw(0), dev.mem().used());
    return round;
}

TEST(ParallelExecTest, MegaKvBitIdenticalAcrossWorkerCounts)
{
    MegaKvRound ref = runMegaKvAt(1);
    for (uint32_t workers : kWorkerCounts) {
        if (workers == 1)
            continue;
        MegaKvRound got = runMegaKvAt(workers);
        EXPECT_EQ(got.insert_result.cycles, ref.insert_result.cycles)
            << workers;
        EXPECT_EQ(got.insert_result.traffic.atomic_conflicts,
                  ref.insert_result.traffic.atomic_conflicts)
            << workers;
        EXPECT_EQ(got.search_result.cycles, ref.search_result.cycles)
            << workers;
        EXPECT_EQ(got.results, ref.results) << workers;
        EXPECT_EQ(got.table_hash, ref.table_hash) << workers;
    }
}

TEST(ParallelExecTest, CrashAbortsInFlightWorkers)
{
    // Tiny cache so dirty lines evict (persist) naturally mid-grid.
    NvmParams nvm_params;
    nvm_params.cache_bytes = 4 * 1024;
    nvm_params.line_bytes = 128;
    nvm_params.associativity = 2;

    Device dev(paramsWithWorkers(8));
    NvmCache nvm(dev.mem(), nvm_params);
    dev.attachNvm(&nvm);

    const uint32_t kBlocks = 64;
    const uint32_t kThreads = 64;
    auto out =
        ArrayRef<uint32_t>::allocate(dev.mem(), kBlocks * kThreads);
    for (size_t i = 0; i < out.size(); ++i)
        out.hostAt(i) = 0;
    nvm.persistAll();

    // Latch the crash roughly mid-grid.
    nvm.crashAfterStores(out.size() / 2);
    LaunchResult r = dev.launch(
        LaunchConfig(Dim3(kBlocks), Dim3(kThreads)), [&](ThreadCtx &t) {
            uint64_t gid = t.globalThreadIdx();
            t.store(out, gid, static_cast<uint32_t>(gid) + 1);
            t.compute(50);
        });

    EXPECT_TRUE(r.crashed);
    EXPECT_LT(r.blocks_completed, kBlocks);

    // Power failure: volatile lines are dropped, the arena rewinds to
    // the persisted image. Every output slot must hold either its
    // persisted pre-launch value (0) or the exact value its thread
    // wrote before the line made it to NVM — nothing torn, nothing
    // from the post-latch epoch beyond what was already in flight.
    nvm.crash();
    uint32_t persisted = 0, dropped = 0;
    for (size_t i = 0; i < out.size(); ++i) {
        uint32_t v = out.hostAt(i);
        if (v == 0)
            ++dropped;
        else if (v == static_cast<uint32_t>(i) + 1)
            ++persisted;
        else
            ADD_FAILURE() << "slot " << i << " holds torn value " << v;
    }
    EXPECT_GT(dropped, 0u) << "a crash that drops nothing proves nothing";
    EXPECT_EQ(persisted + dropped, out.size());

    // After crash() the whole arena IS the persisted image.
    EXPECT_TRUE(nvm.isPersisted(0, dev.mem().used()));
}

TEST(ParallelExecTest, WorkerCountResolution)
{
    // Explicit parameter wins over everything.
    {
        Device dev(paramsWithWorkers(3));
        EXPECT_EQ(dev.resolveWorkers(), 3u);
    }
    // num_workers == 0 defers to GPULP_WORKERS.
    {
        ASSERT_EQ(setenv("GPULP_WORKERS", "5", 1), 0);
        Device dev(paramsWithWorkers(0));
        EXPECT_EQ(dev.resolveWorkers(), 5u);
        ASSERT_EQ(unsetenv("GPULP_WORKERS"), 0);
    }
    // Garbage in the environment falls back to hardware concurrency.
    {
        ASSERT_EQ(setenv("GPULP_WORKERS", "lots", 1), 0);
        Device dev(paramsWithWorkers(0));
        EXPECT_GE(dev.resolveWorkers(), 1u);
        ASSERT_EQ(unsetenv("GPULP_WORKERS"), 0);
    }
}

} // namespace
} // namespace gpulp
