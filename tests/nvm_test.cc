/**
 * @file
 * Unit tests for the NVM persistency-domain model: write-back caching,
 * natural eviction as the persist mechanism, crash semantics, explicit
 * flushes and crash injection.
 */

#include <gtest/gtest.h>

#include "mem/memory.h"
#include "nvm/nvm_cache.h"

namespace gpulp {
namespace {

NvmParams
tinyCache()
{
    NvmParams p;
    p.cache_bytes = 1024; // 8 lines of 128B -> 2 sets x 4 ways
    p.line_bytes = 128;
    p.associativity = 4;
    return p;
}

TEST(NvmCacheTest, FreshStoreIsNotYetPersisted)
{
    GlobalMemory mem(1 << 20);
    NvmCache nvm(mem, tinyCache());
    mem.setObserver(&nvm);
    Addr a = mem.alloc(4096);
    mem.write<uint32_t>(a, 77);
    // The store sits in a dirty cache line: the NVM image still holds 0.
    EXPECT_FALSE(nvm.isPersisted(a, 4));
    uint32_t persisted = 1;
    nvm.readPersisted(a, 4, &persisted);
    EXPECT_EQ(persisted, 0u);
}

TEST(NvmCacheTest, NaturalEvictionPersistsTheLine)
{
    GlobalMemory mem(1 << 20);
    NvmParams p = tinyCache();
    NvmCache nvm(mem, p);
    mem.setObserver(&nvm);
    Addr a = mem.alloc(64 * 1024);
    mem.write<uint32_t>(a, 77);
    // Touch enough other lines mapping to the same set to evict line 0.
    // With 2 sets, lines at stride 2*128 share set 0; 4 ways need 4
    // more conflicting lines.
    for (int i = 1; i <= 8; ++i)
        mem.write<uint32_t>(a + static_cast<Addr>(i) * 2 * 128, 1);
    EXPECT_TRUE(nvm.isPersisted(a, 4));
    uint32_t persisted = 0;
    nvm.readPersisted(a, 4, &persisted);
    EXPECT_EQ(persisted, 77u);
    EXPECT_GT(nvm.stats().dirty_evictions, 0u);
}

TEST(NvmCacheTest, CrashDropsDirtyLines)
{
    GlobalMemory mem(1 << 20);
    NvmCache nvm(mem, tinyCache());
    mem.setObserver(&nvm);
    Addr a = mem.alloc(4096);
    mem.write<uint32_t>(a, 123);
    nvm.crash();
    // Volatile update lost: arena rewound to the NVM image (zero).
    EXPECT_EQ(mem.read<uint32_t>(a), 0u);
}

TEST(NvmCacheTest, CrashKeepsEvictedData)
{
    GlobalMemory mem(1 << 20);
    NvmCache nvm(mem, tinyCache());
    mem.setObserver(&nvm);
    Addr a = mem.alloc(64 * 1024);
    mem.write<uint32_t>(a, 55);
    for (int i = 1; i <= 8; ++i) // force eviction of a's line
        mem.write<uint32_t>(a + static_cast<Addr>(i) * 2 * 128, 1);
    mem.write<uint32_t>(a + 4, 66); // re-dirty the same line
    nvm.crash();
    EXPECT_EQ(mem.read<uint32_t>(a), 55u); // persisted by eviction
    EXPECT_EQ(mem.read<uint32_t>(a + 4), 0u); // dirty again, lost
}

TEST(NvmCacheTest, PersistAllMakesEverythingDurable)
{
    GlobalMemory mem(1 << 20);
    NvmCache nvm(mem, tinyCache());
    mem.setObserver(&nvm);
    Addr a = mem.alloc(4096);
    mem.write<uint32_t>(a, 11);
    *reinterpret_cast<uint32_t *>(mem.raw(a + 8)) = 22; // host raw write
    nvm.persistAll();
    nvm.crash();
    EXPECT_EQ(mem.read<uint32_t>(a), 11u);
    EXPECT_EQ(mem.read<uint32_t>(a + 8), 22u);
}

TEST(NvmCacheTest, HitMissCountersBehave)
{
    GlobalMemory mem(1 << 20);
    NvmCache nvm(mem, tinyCache());
    mem.setObserver(&nvm);
    Addr a = mem.alloc(4096);
    mem.write<uint32_t>(a, 1);       // store miss
    mem.write<uint32_t>(a + 4, 2);   // store hit (same line)
    (void)mem.read<uint32_t>(a);     // load hit
    (void)mem.read<uint32_t>(a + 512); // load miss (different line)
    EXPECT_EQ(nvm.stats().store_misses, 1u);
    EXPECT_EQ(nvm.stats().store_hits, 1u);
    EXPECT_EQ(nvm.stats().load_hits, 1u);
    EXPECT_EQ(nvm.stats().load_misses, 1u);
}

TEST(NvmCacheTest, MultiLineStoreTouchesEveryLine)
{
    GlobalMemory mem(1 << 20);
    NvmCache nvm(mem, tinyCache());
    mem.setObserver(&nvm);
    Addr a = mem.alloc(4096);
    // An 8-byte store straddling a line boundary dirties two lines.
    mem.write<uint64_t>(a + 124, ~0ull);
    EXPECT_EQ(nvm.stats().store_misses, 2u);
}

TEST(NvmCacheTest, CleanEvictionDoesNotWriteNvm)
{
    GlobalMemory mem(1 << 20);
    NvmCache nvm(mem, tinyCache());
    mem.setObserver(&nvm);
    Addr a = mem.alloc(64 * 1024);
    (void)mem.read<uint32_t>(a); // clean line
    for (int i = 1; i <= 8; ++i)
        (void)mem.read<uint32_t>(a + static_cast<Addr>(i) * 2 * 128);
    EXPECT_GT(nvm.stats().clean_evictions, 0u);
    EXPECT_EQ(nvm.stats().nvmLineWrites(), 0u);
}

TEST(NvmCacheTest, WriteAmplificationCountersSeparateNaturalAndFlushed)
{
    GlobalMemory mem(1 << 20);
    NvmCache nvm(mem, tinyCache());
    mem.setObserver(&nvm);
    Addr a = mem.alloc(64 * 1024);
    mem.write<uint32_t>(a, 1);
    for (int i = 1; i <= 8; ++i)
        mem.write<uint32_t>(a + static_cast<Addr>(i) * 2 * 128, 1);
    uint64_t natural = nvm.stats().dirty_evictions;
    EXPECT_GT(natural, 0u);
    nvm.persistAll();
    EXPECT_GT(nvm.stats().flushed_lines, 0u);
    EXPECT_EQ(nvm.stats().nvmLineWrites(),
              nvm.stats().dirty_evictions + nvm.stats().flushed_lines);
}

TEST(NvmCacheTest, CrashInjectionCountsDown)
{
    GlobalMemory mem(1 << 20);
    NvmCache nvm(mem, tinyCache());
    mem.setObserver(&nvm);
    Addr a = mem.alloc(4096);
    nvm.crashAfterStores(3);
    mem.write<uint32_t>(a, 1);
    EXPECT_FALSE(nvm.crashPending());
    mem.write<uint32_t>(a, 2);
    mem.write<uint32_t>(a, 3);
    EXPECT_FALSE(nvm.crashPending());
    mem.write<uint32_t>(a, 4);
    EXPECT_TRUE(nvm.crashPending());
}

TEST(NvmCacheTest, DisarmCancelsInjection)
{
    GlobalMemory mem(1 << 20);
    NvmCache nvm(mem, tinyCache());
    mem.setObserver(&nvm);
    Addr a = mem.alloc(4096);
    nvm.crashAfterStores(0);
    nvm.disarmCrash();
    mem.write<uint32_t>(a, 1);
    EXPECT_FALSE(nvm.crashPending());
}

TEST(NvmCacheTest, CrashClearsPendingFlag)
{
    GlobalMemory mem(1 << 20);
    NvmCache nvm(mem, tinyCache());
    mem.setObserver(&nvm);
    Addr a = mem.alloc(4096);
    nvm.crashAfterStores(0);
    mem.write<uint32_t>(a, 1);
    EXPECT_TRUE(nvm.crashPending());
    nvm.crash();
    EXPECT_FALSE(nvm.crashPending());
}

TEST(NvmCacheTest, DeviceTimeGrowsWithTraffic)
{
    GlobalMemory mem(1 << 20);
    NvmCache nvm(mem, tinyCache());
    mem.setObserver(&nvm);
    Addr a = mem.alloc(64 * 1024);
    double t0 = nvm.nvmDeviceTimeNs();
    for (int i = 0; i < 64; ++i)
        mem.write<uint32_t>(a + static_cast<Addr>(i) * 128, i);
    EXPECT_GT(nvm.nvmDeviceTimeNs(), t0);
}

TEST(NvmCacheTest, LruVictimSelection)
{
    GlobalMemory mem(1 << 20);
    NvmParams p = tinyCache(); // 4 ways
    NvmCache nvm(mem, p);
    mem.setObserver(&nvm);
    Addr a = mem.alloc(64 * 1024);
    Addr stride = 2 * 128; // same set
    // Fill 4 ways: lines 0,1,2,3 (values nonzero so content differs
    // from the zeroed NVM image until written back).
    for (int i = 0; i < 4; ++i)
        mem.write<uint32_t>(a + static_cast<Addr>(i) * stride,
                            100 + static_cast<uint32_t>(i));
    // Touch line 0 so line 1 becomes LRU.
    (void)mem.read<uint32_t>(a);
    // Insert line 4: must evict line 1, persisting its value.
    mem.write<uint32_t>(a + 4 * stride, 4);
    EXPECT_TRUE(nvm.isPersisted(a + 1 * stride, 4));
    EXPECT_FALSE(nvm.isPersisted(a + 0 * stride, 4));
}

} // namespace
} // namespace gpulp
