/**
 * @file
 * Fault-injection campaign tests, plus the regression tests for the
 * two recovery-correctness bugs the campaign was built to catch: the
 * in-band global-array "unwritten" sentinel (a legal all-ones checksum
 * was indistinguishable from an empty slot) and the signed-zero parity
 * mismatch (-0.0f and +0.0f folded different checksum bits), and for
 * the GPULP_SCALE parse validation.
 */

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "harness/driver.h"
#include "harness/faultcampaign.h"
#include "workloads/workload.h"

namespace gpulp {
namespace {

// ---------------------------------------------------------------------
// Sentinel regression (checksum_store.h kUnwrittenChecksum)
// ---------------------------------------------------------------------

TEST(GlobalArraySentinel, AllOnesChecksumIsALegalPayload)
{
    Device dev;
    GlobalArrayStore store(dev, 8);
    const Checksums worst{kUnwrittenChecksum, kUnwrittenChecksum};
    dev.launch(LaunchConfig(Dim3(1), Dim3(1)), [&](ThreadCtx &t) {
        store.insert(t, 3, worst);
    });

    Checksums out;
    EXPECT_TRUE(store.lookup(3, &out))
        << "an all-ones checksum must not read back as never-written";
    EXPECT_EQ(out.sum, kUnwrittenChecksum);
    EXPECT_EQ(out.parity, kUnwrittenChecksum);

    // Genuinely unwritten slots still read as absent.
    EXPECT_FALSE(store.lookup(4, &out));
    store.clear();
    EXPECT_FALSE(store.lookup(3, &out));
}

TEST(GlobalArraySentinel, RegionFoldingToAllOnesValidatesClean)
{
    // End-to-end: a region whose recomputed sum AND parity both land
    // on 0xffffffff (one protected 0xffffffff word does it) must
    // validate clean, not be mis-marked as a failed block.
    Device dev;
    LaunchConfig cfg(Dim3(4), Dim3(1));
    LpRuntime lp(dev, LpConfig::scalable(), cfg);
    LpContext ctx = lp.context();

    dev.launch(cfg, [&](ThreadCtx &t) {
        ChecksumAccum acc = ctx.makeAccum();
        acc.protectU32(t, 0xffffffffu);
        lpCommitRegion(t, ctx, acc);
    });

    RecoverySet failed(dev, cfg.numBlocks());
    dev.launch(cfg, [&](ThreadCtx &t) {
        ChecksumAccum acc = ctx.makeAccum();
        acc.protectU32(t, 0xffffffffu);
        if (t.flatThreadIdx() == 0 && !lpValidateRegion(t, ctx, acc))
            failed.markFailed(t, t.blockRank());
    });
    EXPECT_EQ(failed.failedCount(), 0u)
        << "healthy blocks mis-marked failed by the in-band sentinel";
}

TEST(GlobalArraySentinel, FootprintCountsTheValidBytes)
{
    Device dev;
    GlobalArrayStore store(dev, 100);
    EXPECT_EQ(store.footprintBytes(), 100u * 9);
}

// ---------------------------------------------------------------------
// Signed-zero regression (floatbits.h / ChecksumAccum)
// ---------------------------------------------------------------------

TEST(SignedZeroChecksum, BothZerosFoldTheSameBits)
{
    EXPECT_EQ(floatToChecksumBits(-0.0f), floatToChecksumBits(0.0f));
    EXPECT_EQ(doubleToChecksumBits(-0.0), doubleToChecksumBits(0.0));

    // Transport conversions stay raw: the sign bit is still visible...
    EXPECT_EQ(floatToOrderedInt(-0.0f), 0x80000000u);
    EXPECT_EQ(floatSignBit(-0.0f), 1u);
    // ...and the Fig. 2 paper anchor is untouched.
    EXPECT_EQ(floatToOrderedInt(3.5f), 1080033280u);
    EXPECT_EQ(floatToChecksumBits(3.5f), 1080033280u);

    // NaN payloads fold verbatim (distinct NaNs stay distinguishable).
    EXPECT_EQ(floatToChecksumBits(orderedIntToFloat(0x7fc00001u)),
              0x7fc00001u);

    const float pos[] = {0.0f, 1.5f};
    const float neg[] = {-0.0f, 1.5f};
    EXPECT_EQ(hostChecksumFloats(pos, ChecksumKind::ModularParity),
              hostChecksumFloats(neg, ChecksumKind::ModularParity));
}

TEST(SignedZeroChecksum, ValidationAcceptsTheOtherZero)
{
    // The failure mode in the wild: the original run commits -0.0f, a
    // recovery re-execution (or revalidation from memory) legitimately
    // sees +0.0f. The checksums must agree.
    Device dev;
    LaunchConfig cfg(Dim3(2), Dim3(1));
    LpRuntime lp(dev, LpConfig::scalable(), cfg);
    LpContext ctx = lp.context();
    auto out = ArrayRef<float>::allocate(dev.mem(), cfg.numBlocks());

    dev.launch(cfg, [&](ThreadCtx &t) {
        ChecksumAccum acc = ctx.makeAccum();
        float v = t.blockRank() == 0 ? -0.0f : 1.5f;
        t.store(out, t.blockRank(), v);
        acc.protectFloat(t, v);
        lpCommitRegion(t, ctx, acc);
    });

    // The numerically identical other zero lands in memory.
    out.hostAt(0) = 0.0f;

    RecoverySet failed(dev, cfg.numBlocks());
    dev.launch(cfg, [&](ThreadCtx &t) {
        ChecksumAccum acc = ctx.makeAccum();
        acc.protectFloat(t, t.load(out, t.blockRank()));
        if (t.flatThreadIdx() == 0 && !lpValidateRegion(t, ctx, acc))
            failed.markFailed(t, t.blockRank());
    });
    EXPECT_EQ(failed.failedCount(), 0u)
        << "-0.0 vs +0.0 must not fail validation";
}

// ---------------------------------------------------------------------
// GPULP_SCALE parse validation
// ---------------------------------------------------------------------

TEST(ScaleParse, AcceptsWellFormedValues)
{
    EXPECT_DOUBLE_EQ(parseScaleOrDie("0.25", "--scale"), 0.25);
    EXPECT_DOUBLE_EQ(parseScaleOrDie("1", "--scale"), 1.0);
    EXPECT_DOUBLE_EQ(parseScaleOrDie("1e-3", "--scale"), 0.001);
}

TEST(ScaleParse, RejectsGarbageTrailingJunkAndNonFinite)
{
    EXPECT_EXIT(parseScaleOrDie("0.5abc", "GPULP_SCALE"),
                ::testing::ExitedWithCode(1), "GPULP_SCALE");
    EXPECT_EXIT(parseScaleOrDie("pony", "GPULP_SCALE"),
                ::testing::ExitedWithCode(1), "GPULP_SCALE");
    EXPECT_EXIT(parseScaleOrDie("", "GPULP_SCALE"),
                ::testing::ExitedWithCode(1), "GPULP_SCALE");
    // atof-based parsing let NaN through: NaN fails both range
    // comparisons, so it sailed past "(<= 0 || > 1)".
    EXPECT_EXIT(parseScaleOrDie("nan", "GPULP_SCALE"),
                ::testing::ExitedWithCode(1), "GPULP_SCALE");
    EXPECT_EXIT(parseScaleOrDie("inf", "GPULP_SCALE"),
                ::testing::ExitedWithCode(1), "GPULP_SCALE");
    EXPECT_EXIT(parseScaleOrDie("0", "GPULP_SCALE"),
                ::testing::ExitedWithCode(1), "GPULP_SCALE");
    EXPECT_EXIT(parseScaleOrDie("-0.5", "GPULP_SCALE"),
                ::testing::ExitedWithCode(1), "GPULP_SCALE");
    EXPECT_EXIT(parseScaleOrDie("1.5", "GPULP_SCALE"),
                ::testing::ExitedWithCode(1), "GPULP_SCALE");
}

TEST(ScaleParse, EnvRoundTrip)
{
    ASSERT_EQ(setenv("GPULP_SCALE", "0.125", 1), 0);
    EXPECT_DOUBLE_EQ(benchScaleFromEnv(), 0.125);
    ASSERT_EQ(setenv("GPULP_SCALE", "0.5junk", 1), 0);
    EXPECT_EXIT(benchScaleFromEnv(), ::testing::ExitedWithCode(1),
                "GPULP_SCALE");
    ASSERT_EQ(unsetenv("GPULP_SCALE"), 0);
    EXPECT_DOUBLE_EQ(benchScaleFromEnv(), 1.0);
}

// ---------------------------------------------------------------------
// Output-span hooks
// ---------------------------------------------------------------------

TEST(OutputSpans, BlockSpansPartitionTheOutput)
{
    for (const char *name : {"tmm", "spmv", "mri-q", "sad"}) {
        Device dev;
        auto w = makeWorkload(name, 0.004);
        w->setup(dev);
        auto spans = w->outputSpans();
        ASSERT_FALSE(spans.empty()) << name;
        uint64_t total = 0;
        for (const OutputSpan &s : spans)
            total += s.bytes;
        EXPECT_EQ(total, w->outputBytes()) << name;

        // Per-block spans must tile the output exactly: disjoint,
        // inside the declared output, summing to the same byte count.
        std::vector<std::pair<Addr, Addr>> intervals;
        uint64_t block_total = 0;
        for (uint64_t b = 0; b < w->launchConfig().numBlocks(); ++b) {
            for (const OutputSpan &s : w->blockOutputSpans(b)) {
                ASSERT_GT(s.bytes, 0u) << name;
                bool inside = false;
                for (const OutputSpan &o : spans) {
                    inside |= s.addr >= o.addr &&
                              s.addr + s.bytes <= o.addr + o.bytes;
                }
                EXPECT_TRUE(inside) << name << " block " << b;
                intervals.emplace_back(s.addr, s.addr + s.bytes);
                block_total += s.bytes;
            }
        }
        EXPECT_EQ(block_total, w->outputBytes()) << name;
        std::sort(intervals.begin(), intervals.end());
        for (size_t i = 1; i < intervals.size(); ++i) {
            EXPECT_LE(intervals[i - 1].second, intervals[i].first)
                << name << ": blocks share output bytes";
        }
    }
}

// ---------------------------------------------------------------------
// Campaign smoke
// ---------------------------------------------------------------------

TEST(FaultCampaign, SmokeSweepRecoversEverythingOnAllStores)
{
    CampaignOptions opts;
    opts.scale = 0.004;
    opts.seed = 7;
    opts.grid_points = 4;
    opts.random_points = 2;
    opts.num_workers = 1;
    opts.workloads = {"spmv"};

    CampaignResult result = runFaultCampaign(opts);
    EXPECT_TRUE(result.passed());
    // quad, cuckoo, array, bucket2, bucket2opt
    ASSERT_EQ(result.cells.size(), 5u);

    for (const CellResult &cell : result.cells) {
        SCOPED_TRACE(toString(cell.table));
        EXPECT_TRUE(cell.passed());
        EXPECT_EQ(cell.trials.size(), 6u);
        EXPECT_EQ(cell.falsePasses(), 0u);
        uint64_t corrupt = 0, recovered = 0;
        for (const TrialResult &t : cell.trials) {
            EXPECT_TRUE(t.converged);
            EXPECT_TRUE(t.output_matches_golden);
            EXPECT_TRUE(t.verify_ok);
            EXPECT_EQ(t.true_fails + t.false_fails, t.flagged_blocks);
            corrupt += t.corrupt_blocks;
            recovered += t.blocks_recovered;
        }
        // The sweep is pointless unless crashes actually corrupt state
        // that recovery then repairs.
        EXPECT_GT(corrupt, 0u);
        EXPECT_GT(recovered, 0u);
    }
}

TEST(FaultCampaign, DeterministicForAFixedSeed)
{
    CampaignOptions opts;
    opts.scale = 0.004;
    opts.seed = 11;
    opts.grid_points = 2;
    opts.random_points = 1;
    opts.num_workers = 1;
    opts.workloads = {"mri-q"};
    opts.tables = {TableKind::GlobalArray};

    CampaignResult a = runFaultCampaign(opts);
    CampaignResult b = runFaultCampaign(opts);
    ASSERT_EQ(a.cells.size(), 1u);
    ASSERT_EQ(b.cells.size(), 1u);
    ASSERT_EQ(a.cells[0].trials.size(), b.cells[0].trials.size());
    for (size_t i = 0; i < a.cells[0].trials.size(); ++i) {
        const TrialResult &ta = a.cells[0].trials[i];
        const TrialResult &tb = b.cells[0].trials[i];
        EXPECT_EQ(ta.crash_point, tb.crash_point);
        EXPECT_EQ(ta.torn_lines, tb.torn_lines);
        EXPECT_EQ(ta.corrupt_blocks, tb.corrupt_blocks);
        EXPECT_EQ(ta.flagged_blocks, tb.flagged_blocks);
        EXPECT_EQ(ta.blocks_recovered, tb.blocks_recovered);
    }
}

} // namespace
} // namespace gpulp
