/**
 * @file
 * Tests for the event-driven fiber scheduler and the clwb write-back
 * accounting fix.
 *
 * The scheduler swap (wait lists + ready set instead of the retired
 * poll-everything round-robin) must be invisible in every simulated
 * number: the golden fixtures below were captured with the poll-loop
 * scheduler and pin cycles, traffic and whole-arena hashes at several
 * worker counts. What *is* allowed to change — and what the storm test
 * asserts — is the host-side work: fiber switches per barrier must be
 * O(threads), not O(threads^2).
 */

#include <atomic>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "core/lp_config.h"
#include "core/runtime.h"
#include "obs/counters.h"
#include "sim/exec.h"
#include "sim/thread_pool.h"
#include "workloads/workload.h"

namespace gpulp {
namespace {

/** FNV-1a over a byte range, used to fingerprint device memory. */
uint64_t
fnv1a(const char *data, size_t len)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < len; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 0x100000001b3ull;
    }
    return h;
}

// ---------------------------------------------------------------------
// clwb bandwidth accounting
// ---------------------------------------------------------------------

/**
 * clwb on a dirty line must charge exactly one line of write-back
 * traffic against the bandwidth roofline — and must NOT count as a
 * store instruction (the old code charged onGlobalStore(0): zero bytes
 * plus a phantom global_stores increment).
 */
TEST(SchedTest, ClwbChargesWriteBackBandwidth)
{
    DeviceParams p;
    p.num_workers = 1;
    Device dev(p);
    NvmCache nvm(dev.mem());
    dev.attachNvm(&nvm);
    const size_t line = nvm.params().line_bytes;

    auto data = ArrayRef<uint32_t>::allocate(dev.mem(), 64);
    nvm.persistAll();

    // One store dirties the line; the first clwb writes it back; the
    // second clwb finds it clean and moves no data.
    LaunchResult r = dev.launch(
        LaunchConfig(Dim3(1), Dim3(1)), [&](ThreadCtx &t) {
            t.store(data, 0, 42u);
            t.clwb(data.addrOf(0));
            t.clwb(data.addrOf(0));
            t.persistBarrier();
        });

    EXPECT_EQ(r.traffic.global_stores, 1u)
        << "clwb must not retire a store instruction";
    EXPECT_EQ(r.traffic.bytes_written, sizeof(uint32_t) + line)
        << "dirty-line clwb charges one line; clean-line clwb charges "
           "nothing";

    // A launch that only clwbs already-clean lines moves zero bytes.
    LaunchResult clean = dev.launch(
        LaunchConfig(Dim3(1), Dim3(1)), [&](ThreadCtx &t) {
            t.clwb(data.addrOf(0));
            t.persistBarrier();
        });
    EXPECT_EQ(clean.traffic.global_stores, 0u);
    EXPECT_EQ(clean.traffic.bytes_written, 0u);
}

// ---------------------------------------------------------------------
// Scheduler determinism
// ---------------------------------------------------------------------

/** One workload's golden numbers, captured pre-swap (poll scheduler). */
struct Golden {
    const char *name;
    double scale;
    Cycles base_cycles;
    Cycles lp_cycles;
    uint64_t arena_hash;
};

/**
 * Captured with the retired round-robin poll scheduler at workers=1.
 * The event-driven scheduler must reproduce them bit for bit at every
 * worker count: resume order is part of the determinism contract.
 */
const Golden kGolden[] = {
    {"tmm", 0.01, 68755, 76798, 0x129413ea99295c16ull},
    {"tpacf", 0.05, 75136, 77572, 0xd8829723e7e5f4e6ull},
    {"histo", 0.05, 20602, 21093, 0x58868e4fc9ed5d8bull},
};

TEST(SchedTest, MatchesPollSchedulerFixturesAtEveryWorkerCount)
{
    for (const Golden &g : kGolden) {
        for (uint32_t workers : {1u, 2u, 8u}) {
            DeviceParams p;
            p.num_workers = workers;
            Device dev(p);
            auto w = makeWorkload(g.name, g.scale);
            w->setup(dev);
            LaunchResult base = runBaseline(dev, *w);
            std::string why;
            ASSERT_TRUE(w->verify(&why)) << g.name << ": " << why;

            LpConfig cfg = LpConfig::naive(TableKind::QuadProbe);
            cfg.load_factor = w->quadLoadFactor();
            LpRuntime lp(dev, cfg, w->launchConfig());
            LaunchResult lpr = runWithLp(dev, *w, lp);

            std::string what =
                std::string(g.name) + " @" + std::to_string(workers);
            EXPECT_EQ(base.cycles, g.base_cycles) << what;
            EXPECT_EQ(lpr.cycles, g.lp_cycles) << what;
            EXPECT_EQ(fnv1a(dev.mem().raw(0), dev.mem().used()),
                      g.arena_hash)
                << what;
        }
    }
}

// ---------------------------------------------------------------------
// Switch complexity
// ---------------------------------------------------------------------

/**
 * Barrier/shuffle storm with asymmetric warps: warp 0 runs 64 shuffle
 * rounds per iteration while every other warp runs one, then all meet
 * at __syncthreads. Under the poll scheduler every parked thread was
 * resumed on every pass while warp 0 caught up — 129,048 resumes for
 * this kernel. Event-driven parking resumes a thread only when its
 * event fires, so switches are bounded by actual arrivals:
 * one initial resume per thread plus at most one per barrier arrival
 * and one per shuffle deposit.
 */
TEST(SchedTest, BarrierStormSwitchesScaleWithArrivalsNotPasses)
{
    const bool was_enabled = obs::countersEnabled();
    obs::setCountersEnabled(true);
    obs::resetCounters();

    constexpr uint32_t kThreads = 256, kRounds = 64, kIters = 8;
    Device dev;
    dev.launch(LaunchConfig(Dim3(1), Dim3(kThreads)), [&](ThreadCtx &t) {
        for (uint32_t i = 0; i < kIters; ++i) {
            uint32_t rounds = t.warpId() == 0 ? kRounds : 1;
            uint32_t v = t.laneId();
            for (uint32_t r = 0; r < rounds; ++r)
                v += t.shflDown(v, 1);
            t.syncthreads();
        }
    });

    auto snap = obs::snapshotCounters();
    obs::setCountersEnabled(was_enabled);
    const uint64_t switches = snap[obs::Ctr::SimFiberSwitches];
    const uint64_t barriers = snap[obs::Ctr::SimBarrierWaits];
    const uint64_t shuffles = snap[obs::Ctr::SimShuffles];

    // O(arrivals) bound: every switch is accounted for by a thread
    // start, a barrier arrival or a shuffle deposit.
    EXPECT_LE(switches, kThreads + barriers + shuffles);

    // Regression floor vs the poll scheduler's measured 129,048
    // resumes on this exact kernel (>= 2x reduction demanded; actual
    // is ~6.5x).
    constexpr uint64_t kPollSchedulerResumes = 129048;
    EXPECT_LE(switches, kPollSchedulerResumes / 2);
}

// ---------------------------------------------------------------------
// ReadySet pick order (satellite of the schedule-explorer PR)
// ---------------------------------------------------------------------

/**
 * The exec.h contract says wake order is irrelevant *because* the
 * ready set re-sorts: the default pick is the smallest flat tid at or
 * after the cursor, cyclically, no matter in which order tids were
 * added. Debug builds additionally assert this inside popNextFrom on
 * every pick; this test pins the semantics in release builds too.
 */
TEST(SchedTest, ReadySetPicksAreFlatTidSortedCyclic)
{
    ReadySet rs(128);
    // Deliberately unsorted insertion order.
    rs.add(5);
    rs.add(64);
    rs.add(1);
    rs.add(90);
    EXPECT_EQ(rs.size(), 4u);

    std::vector<uint32_t> tids;
    rs.collect(tids);
    EXPECT_EQ(tids, (std::vector<uint32_t>{1, 5, 64, 90}));

    EXPECT_EQ(rs.popNextFrom(6), 64u) << "smallest tid at/after cursor";
    EXPECT_EQ(rs.popNextFrom(91), 1u) << "cursor past the top wraps";
    EXPECT_TRUE(rs.take(5));
    EXPECT_FALSE(rs.take(5)) << "double-take must fail";
    EXPECT_EQ(rs.popNextFrom(0), 90u);
    EXPECT_TRUE(rs.empty());
    EXPECT_EQ(rs.popNextFrom(0), ReadySet::kNone);
}

// ---------------------------------------------------------------------
// Rank-gate abort wakeup
// ---------------------------------------------------------------------

/**
 * awaitLeader is purely event-driven now — no 1 ms re-poll — so an
 * abort source must be able to wake parked waiters via notifyAbort().
 */
TEST(SchedTest, NotifyAbortWakesParkedGateWaiter)
{
    RankGate gate(/*num_blocks=*/4, /*num_workers=*/1);
    std::atomic<bool> aborted{false};
    std::atomic<bool> parked{false};
    bool got_leadership = true;

    std::thread waiter([&] {
        parked.store(true);
        // Rank 2 can never lead: ranks 0-1 never complete.
        got_leadership =
            gate.awaitLeader(2, [&] { return aborted.load(); });
    });

    while (!parked.load())
        std::this_thread::yield();
    // Give the waiter a moment to actually park on the cv.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    aborted.store(true);
    gate.notifyAbort();
    waiter.join();

    EXPECT_FALSE(got_leadership)
        << "abort must release the waiter without leadership";
}

/** Frontier advance still wakes waiters (the normal path). */
TEST(SchedTest, FrontierAdvanceGrantsLeadership)
{
    RankGate gate(/*num_blocks=*/3, /*num_workers=*/1);
    bool got_leadership = false;

    std::thread waiter([&] {
        got_leadership = gate.awaitLeader(1, [] { return false; });
    });
    gate.complete(0);
    waiter.join();

    EXPECT_TRUE(got_leadership);
    EXPECT_EQ(gate.frontier(), 1u);
}

} // namespace
} // namespace gpulp
