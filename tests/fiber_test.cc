/**
 * @file
 * Unit tests for the fiber substrate: switching, yielding, interleaved
 * scheduling, stack pooling and deep-call correctness.
 */

#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fiber/fiber.h"

namespace gpulp {
namespace {

TEST(FiberTest, RunsToCompletionWithoutYield)
{
    bool ran = false;
    Fiber fiber([&] { ran = true; });
    EXPECT_FALSE(fiber.started());
    fiber.resume();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(fiber.finished());
}

TEST(FiberTest, YieldSuspendsAndResumes)
{
    int step = 0;
    Fiber fiber([&] {
        step = 1;
        Fiber::yield();
        step = 2;
        Fiber::yield();
        step = 3;
    });
    fiber.resume();
    EXPECT_EQ(step, 1);
    EXPECT_FALSE(fiber.finished());
    fiber.resume();
    EXPECT_EQ(step, 2);
    EXPECT_FALSE(fiber.finished());
    fiber.resume();
    EXPECT_EQ(step, 3);
    EXPECT_TRUE(fiber.finished());
}

TEST(FiberTest, CurrentIsNullOutsideFiber)
{
    EXPECT_EQ(Fiber::current(), nullptr);
    Fiber *inside = nullptr;
    Fiber fiber([&] { inside = Fiber::current(); });
    fiber.resume();
    EXPECT_EQ(inside, &fiber);
    EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(FiberTest, RoundRobinInterleavesDeterministically)
{
    // Three fibers each append their id then yield, three times; a
    // round-robin scheduler must interleave them 012012012.
    std::string trace;
    std::vector<std::unique_ptr<Fiber>> fibers;
    for (int id = 0; id < 3; ++id) {
        fibers.push_back(std::make_unique<Fiber>([&trace, id] {
            for (int i = 0; i < 3; ++i) {
                trace += static_cast<char>('0' + id);
                Fiber::yield();
            }
        }));
    }
    bool any_alive = true;
    while (any_alive) {
        any_alive = false;
        for (auto &f : fibers) {
            if (!f->finished()) {
                f->resume();
                any_alive = true;
            }
        }
    }
    EXPECT_EQ(trace, "012012012");
}

TEST(FiberTest, LocalStateSurvivesYield)
{
    // Locals live on the fiber stack; they must survive suspension.
    long result = 0;
    Fiber fiber([&] {
        std::vector<int> data(100);
        std::iota(data.begin(), data.end(), 1);
        Fiber::yield();
        result = std::accumulate(data.begin(), data.end(), 0L);
    });
    fiber.resume();
    fiber.resume();
    EXPECT_EQ(result, 5050);
    EXPECT_TRUE(fiber.finished());
}

TEST(FiberTest, DeepCallChainOnFiberStack)
{
    // Recursion exercises a real stack, not a register trick.
    std::function<long(long)> tri = [&](long n) -> long {
        if (n == 0)
            return 0;
        if (n % 64 == 0)
            Fiber::yield();
        return n + tri(n - 1);
    };
    long result = 0;
    Fiber fiber([&] { result = tri(300); });
    while (!fiber.finished())
        fiber.resume();
    EXPECT_EQ(result, 300 * 301 / 2);
}

TEST(FiberTest, NestedFiberResume)
{
    // A fiber may itself resume another fiber (simulator never does,
    // but the substrate supports it); current() must track correctly.
    std::string trace;
    Fiber inner([&] {
        trace += "i1";
        Fiber::yield();
        trace += "i2";
    });
    Fiber outer([&] {
        trace += "o1";
        inner.resume();
        trace += "o2";
        EXPECT_EQ(Fiber::current(), nullptr ? nullptr : Fiber::current());
        inner.resume();
        trace += "o3";
    });
    outer.resume();
    EXPECT_EQ(trace, "o1i1o2i2o3");
    EXPECT_TRUE(outer.finished());
    EXPECT_TRUE(inner.finished());
}

TEST(FiberTest, ManyFibersSequential)
{
    long sum = 0;
    for (int i = 0; i < 2000; ++i) {
        Fiber fiber([&sum, i] { sum += i; });
        fiber.resume();
        EXPECT_TRUE(fiber.finished());
    }
    EXPECT_EQ(sum, 2000L * 1999 / 2);
}

TEST(StackPoolTest, ReusesStacks)
{
    StackPool pool(64 * 1024);
    {
        Fiber a([] {}, &pool);
        a.resume();
    }
    EXPECT_EQ(pool.allocatedCount(), 1u);
    EXPECT_EQ(pool.freeCount(), 1u);
    {
        Fiber b([] {}, &pool);
        b.resume();
    }
    // The second fiber must have reused the first stack.
    EXPECT_EQ(pool.allocatedCount(), 1u);
    EXPECT_EQ(pool.freeCount(), 1u);
}

TEST(StackPoolTest, GrowsToConcurrentPeak)
{
    StackPool pool(64 * 1024);
    {
        std::vector<std::unique_ptr<Fiber>> fibers;
        for (int i = 0; i < 8; ++i)
            fibers.push_back(std::make_unique<Fiber>([] {}, &pool));
        for (auto &f : fibers)
            f->resume();
    }
    EXPECT_EQ(pool.allocatedCount(), 8u);
    EXPECT_EQ(pool.freeCount(), 8u);
}

TEST(StackPoolTest, PooledFibersInterleave)
{
    StackPool pool(64 * 1024);
    int counter = 0;
    std::vector<std::unique_ptr<Fiber>> fibers;
    for (int i = 0; i < 32; ++i) {
        fibers.push_back(std::make_unique<Fiber>(
            [&counter] {
                ++counter;
                Fiber::yield();
                ++counter;
            },
            &pool));
    }
    for (auto &f : fibers)
        f->resume();
    EXPECT_EQ(counter, 32);
    for (auto &f : fibers)
        f->resume();
    EXPECT_EQ(counter, 64);
    for (auto &f : fibers)
        EXPECT_TRUE(f->finished());
}

} // namespace
} // namespace gpulp
