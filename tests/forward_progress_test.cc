/**
 * @file
 * Forward-progress tests for eager recovery (Sec. II-A): "eager
 * recovery ... guarantees forward progress" — even when crashes keep
 * striking during recovery itself, repeated validate-and-recover
 * rounds must converge to the exact result, because each round
 * persists everything it recovered.
 */

#include <gtest/gtest.h>

#include "core/recovery.h"
#include "core/runtime.h"

namespace gpulp {
namespace {

class RepeatedCrashes : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RepeatedCrashes, RecoveryConvergesDespiteCrashesDuringRecovery)
{
    const uint64_t crash_period = GetParam();

    Device dev;
    NvmParams nvm_params;
    nvm_params.cache_bytes = 64 * 1024;
    NvmCache nvm(dev.mem(), nvm_params);
    dev.attachNvm(&nvm);

    LaunchConfig cfg(Dim3(24), Dim3(32));
    const uint64_t n = cfg.numBlocks() * 32;
    auto in = ArrayRef<float>::allocate(dev.mem(), n);
    auto out = ArrayRef<float>::allocate(dev.mem(), n);
    for (uint64_t i = 0; i < n; ++i)
        in.hostAt(i) = static_cast<float>(i % 31) * 0.25f;

    LpRuntime lp(dev, LpConfig::scalable(), cfg);
    LpContext ctx = lp.context();
    auto kernel = [&](ThreadCtx &t) {
        ChecksumAccum acc = ctx.makeAccum();
        uint64_t i = t.globalThreadIdx();
        float v = 5.0f * t.load(in, i) - 2.0f;
        t.store(out, i, v);
        acc.protectFloat(t, v);
        lpCommitRegion(t, ctx, acc);
    };

    nvm.persistAll();
    nvm.crashAfterStores(crash_period);
    (void)dev.launch(cfg, kernel);
    nvm.crash();

    // Keep crashing during recovery. Each recovery round re-executes
    // only still-failed blocks and then persists (eager recovery), so
    // the failed count must shrink monotonically to zero.
    uint64_t prev_failed = n + 1;
    uint64_t period = crash_period;
    int rounds = 0;
    while (true) {
        ++rounds;
        ASSERT_LE(rounds, 64) << "recovery failed to converge";

        // Validation must run reliably (a real system would not arm
        // the next fault mid-validation); crash the *recovery* kernel.
        RecoverySet failed(dev, cfg.numBlocks());
        dev.launch(cfg, [&](ThreadCtx &t) {
            ChecksumAccum acc = ctx.makeAccum();
            acc.protectFloat(t, t.load(out, t.globalThreadIdx()));
            // lpValidateRegion is a collective: every thread calls it.
            bool ok = lpValidateRegion(t, ctx, acc);
            if (t.flatThreadIdx() == 0 && !ok)
                failed.markFailed(t, t.blockRank());
        });
        uint64_t failures = failed.failedCount();
        if (failures == 0)
            break;
        // Already-durable blocks stay valid across later crashes, so
        // the failed set can never grow.
        EXPECT_LE(failures, prev_failed)
            << "a previously durable block regressed";
        prev_failed = failures;

        // Crashes are random events; model them striking the recovery
        // at stretching intervals (a fixed tiny interval would starve
        // any scheme, LP or otherwise).
        nvm.crashAfterStores(period);
        period *= 2;
        LaunchResult r = dev.launch(cfg, [&](ThreadCtx &t) {
            if (failed.isFailedHost(t.blockRank()))
                kernel(t);
        });
        if (r.crashed) {
            nvm.crash();
        } else {
            nvm.disarmCrash();
            nvm.persistAll(); // the eager-recovery persist
        }
    }

    for (uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(out.hostAt(i), 5.0f * in.hostAt(i) - 2.0f) << i;
    // Durable, too.
    nvm.crash();
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(out.hostAt(i), 5.0f * in.hostAt(i) - 2.0f) << i;
}

INSTANTIATE_TEST_SUITE_P(CrashPeriods, RepeatedCrashes,
                         ::testing::Values(120ull, 300ull, 700ull,
                                           1500ull));

TEST(EagerRecoveryDriver, AbsorbsCrashArmedDuringRecovery)
{
    Device dev;
    NvmParams nvm_params;
    nvm_params.cache_bytes = 64 * 1024;
    NvmCache nvm(dev.mem(), nvm_params);
    dev.attachNvm(&nvm);

    LaunchConfig cfg(Dim3(24), Dim3(32));
    const uint64_t n = cfg.numBlocks() * 32;
    auto in = ArrayRef<float>::allocate(dev.mem(), n);
    auto out = ArrayRef<float>::allocate(dev.mem(), n);
    for (uint64_t i = 0; i < n; ++i)
        in.hostAt(i) = static_cast<float>(i % 31) * 0.25f;

    LpRuntime lp(dev, LpConfig::scalable(), cfg);
    LpContext ctx = lp.context();
    auto kernel = [&](ThreadCtx &t) {
        ChecksumAccum acc = ctx.makeAccum();
        uint64_t i = t.globalThreadIdx();
        float v = 5.0f * t.load(in, i) - 2.0f;
        t.store(out, i, v);
        acc.protectFloat(t, v);
        lpCommitRegion(t, ctx, acc);
    };

    nvm.persistAll();
    nvm.crashAfterStores(200);
    (void)dev.launch(cfg, kernel);
    nvm.crash();

    // Arm a second power failure to strike while the recovery driver's
    // kernels run. Every block failed (the 64 KiB cache evicted
    // nothing before the crash), so the first recovery round attempts
    // ~800 stores and the 400-store countdown fires inside it. The
    // driver must absorb the crash, rewind to the eager persistAll()
    // checkpoint and still converge.
    nvm.crashAfterStores(400);

    RecoveryReport report = lpValidateAndRecover(
        dev, cfg, ctx,
        [&](ThreadCtx &t, RecoverySet &failed) {
            ChecksumAccum acc = ctx.makeAccum();
            acc.protectFloat(t, t.load(out, t.globalThreadIdx()));
            bool ok = lpValidateRegion(t, ctx, acc);
            if (t.flatThreadIdx() == 0 && !ok)
                failed.markFailed(t, t.blockRank());
        },
        [&](ThreadCtx &t, const RecoverySet &failed) {
            if (failed.isFailedHost(t.blockRank()))
                kernel(t);
        });

    EXPECT_TRUE(report.converged);
    EXPECT_GT(report.blocks_failed, 0u);
    EXPECT_GE(report.crashes_survived, 1u);
    EXPECT_GT(report.rounds, report.crashes_survived);

    for (uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(out.hostAt(i), 5.0f * in.hostAt(i) - 2.0f) << i;
    // Durable, too: the driver's final persistAll() checkpointed it.
    nvm.crash();
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(out.hostAt(i), 5.0f * in.hostAt(i) - 2.0f) << i;
}

} // namespace
} // namespace gpulp
