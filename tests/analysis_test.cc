/**
 * @file
 * Tests for the schedule-exploration subsystem (src/analysis): the
 * pluggable schedule policies, the happens-before interleaving race
 * analyzer, the DPOR-lite backtracking loop — and the mutation test
 * the whole PR hangs on: a seeded ordering bug that the production
 * deterministic schedule masks completely (output correct, host
 * verification green) but that the explorer catches three independent
 * ways (random permutation violates the checksum, the HB analyzer
 * flags the race even on the benign order, and DPOR-lite derives the
 * bug-exposing schedule from the race without any luck).
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "analysis/explorer.h"
#include "analysis/policies.h"
#include "analysis/race.h"
#include "core/lp_config.h"
#include "core/recovery.h"
#include "core/runtime.h"
#include "harness/faultcampaign.h"
#include "nvm/nvm_cache.h"
#include "sim/exec.h"
#include "sim/device.h"
#include "workloads/workload.h"

namespace gpulp {
namespace {

/** FNV-1a over a byte range, used to fingerprint device memory. */
uint64_t
fnv1a(const char *data, size_t len)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < len; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 0x100000001b3ull;
    }
    return h;
}

// ---------------------------------------------------------------------
// The mutation kernel
// ---------------------------------------------------------------------

constexpr uint32_t kPubThreads = 64;

uint32_t
pubValue(uint32_t tid)
{
    return tid * 2654435761u + 17u;
}

uint32_t
pubExpected()
{
    uint32_t sum = 0;
    for (uint32_t t = 0; t < kPubThreads; ++t)
        sum += pubValue(t);
    return sum;
}

/**
 * Store-then-publish: every thread writes its slot, thread 63 sums all
 * slots into a published checksum. @p with_barrier is the correct
 * protocol; without it the publisher races every writer — but the
 * deterministic cyclic schedule resumes tids in ascending order and
 * runs the yield-free publisher dead last, so the bug is invisible to
 * the production schedule and to any output-comparing test under it.
 */
void
runPublishKernel(Device &dev, ArrayRef<uint32_t> &data,
                 ArrayRef<uint32_t> &out, bool with_barrier)
{
    dev.launch(LaunchConfig(Dim3(1), Dim3(kPubThreads)), [&](ThreadCtx &t) {
        uint32_t tid = t.flatThreadIdx();
        t.store(data, tid, pubValue(tid));
        if (with_barrier)
            t.syncthreads();
        if (tid == kPubThreads - 1) {
            uint32_t sum = 0;
            for (uint32_t i = 0; i < kPubThreads; ++i)
                sum += t.load(data, i);
            t.store(out, 0, sum);
        }
    });
}

/** Explore the publish kernel's schedules, checking the checksum. */
ExploreResult
explorePublishKernel(Device &dev, const ExploreOptions &opts,
                     bool with_barrier)
{
    auto data = ArrayRef<uint32_t>::allocate(dev.mem(), kPubThreads);
    auto out = ArrayRef<uint32_t>::allocate(dev.mem(), 1);
    return exploreSchedules(
        dev, opts,
        [&](uint32_t, const TraceCollector &,
            std::vector<std::string> &violations) {
            // Rewind: a stale data[] from the previous run would let
            // an early publisher read correct values by accident.
            std::memset(dev.mem().raw(data.addrOf(0)), 0,
                        kPubThreads * sizeof(uint32_t));
            std::memset(dev.mem().raw(out.addrOf(0)), 0, sizeof(uint32_t));
            runPublishKernel(dev, data, out, with_barrier);
            uint32_t got;
            std::memcpy(&got, dev.mem().raw(out.addrOf(0)), sizeof got);
            if (got != pubExpected())
                violations.push_back("published checksum is wrong");
        });
}

Device
makeDevice(uint32_t workers = 1)
{
    DeviceParams p;
    p.num_workers = workers;
    return Device(p);
}

// ---------------------------------------------------------------------
// Mutation test: the ordering bug the deterministic schedule masks
// ---------------------------------------------------------------------

/**
 * Step 1 of the mutation argument: under the production deterministic
 * schedule the buggy kernel produces the correct checksum — output
 * comparison cannot catch the missing barrier. The HB analyzer still
 * flags the unordered write/read pairs on that very same benign run.
 */
TEST(AnalysisTest, MutationIsMaskedByDeterministicScheduleButRacesFlagged)
{
    Device dev = makeDevice();
    ExploreOptions opts;
    opts.policy = PolicyKind::Deterministic;
    ExploreResult er = explorePublishKernel(dev, opts,
                                            /*with_barrier=*/false);
    EXPECT_EQ(er.runs, 1u);
    EXPECT_TRUE(er.violations.empty())
        << "the deterministic schedule must mask the bug (that is the "
           "point of the mutation)";
    EXPECT_GT(er.races_flagged, 0u)
        << "the HB analyzer must flag the unsynchronized publish even "
           "on the benign interleaving";
}

/** Step 2: random permutation exposes the wrong checksum. */
TEST(AnalysisTest, MutationCaughtBySeededRandomExploration)
{
    Device dev = makeDevice();
    ExploreOptions opts;
    opts.policy = PolicyKind::SeededRandom;
    opts.seed = 7;
    opts.schedules = 16;
    ExploreResult er = explorePublishKernel(dev, opts,
                                            /*with_barrier=*/false);
    EXPECT_EQ(er.runs, 16u);
    EXPECT_FALSE(er.violations.empty())
        << "16 random schedules must include one that runs the "
           "publisher before some writer";
    EXPECT_GT(er.races_flagged, 0u);
    EXPECT_GT(er.distinct(), 1u);
}

/**
 * Step 3: DPOR-lite needs no luck — the first (deterministic) run's
 * races become backtrack prefixes that force the publisher early, so
 * the checksum violation is found systematically.
 */
TEST(AnalysisTest, MutationCaughtByDporBacktracking)
{
    Device dev = makeDevice();
    ExploreOptions opts;
    opts.policy = PolicyKind::DporLite;
    opts.schedules = 8;
    ExploreResult er = explorePublishKernel(dev, opts,
                                            /*with_barrier=*/false);
    EXPECT_GT(er.runs, 1u) << "races must enqueue backtrack prefixes";
    EXPECT_GT(er.backtracks_enqueued, 0u);
    EXPECT_FALSE(er.violations.empty())
        << "some backtracked schedule must expose the wrong checksum";
}

/** The corrected kernel survives the same exploration unscathed. */
TEST(AnalysisTest, CorrectKernelHasNoViolationsAndNoRaces)
{
    Device dev = makeDevice();
    ExploreOptions opts;
    opts.policy = PolicyKind::SeededRandom;
    opts.seed = 7;
    opts.schedules = 16;
    ExploreResult er = explorePublishKernel(dev, opts,
                                            /*with_barrier=*/true);
    EXPECT_TRUE(er.violations.empty());
    EXPECT_EQ(er.races_flagged, 0u)
        << "barrier edges must order every write/read pair";
    EXPECT_GT(er.distinct(), 1u)
        << "the barrier still leaves schedule freedom to explore";
}

// ---------------------------------------------------------------------
// Policy semantics
// ---------------------------------------------------------------------

/**
 * Satellite S1 at the observable level: under DeterministicPolicy a
 * park-free block resumes threads in ascending flat-tid order — the
 * recorded decision sequence is exactly 0..N-1.
 */
TEST(AnalysisTest, DeterministicPolicyResumesInFlatTidOrder)
{
    Device dev = makeDevice();
    TraceCollector collector;
    dev.setSchedulePolicyFactory([&collector](uint64_t rank) {
        return std::make_unique<DeterministicPolicy>(rank, &collector);
    });
    auto data = ArrayRef<uint32_t>::allocate(dev.mem(), kPubThreads);
    dev.launch(LaunchConfig(Dim3(1), Dim3(kPubThreads)), [&](ThreadCtx &t) {
        t.store(data, t.flatThreadIdx(), t.flatThreadIdx());
    });
    dev.setSchedulePolicyFactory(SchedulePolicyFactory{});

    auto blocks = collector.sortedBlocks();
    ASSERT_EQ(blocks.size(), 1u);
    ASSERT_EQ(blocks[0].decisions.size(), kPubThreads);
    for (uint32_t d = 0; d < kPubThreads; ++d)
        EXPECT_EQ(blocks[0].decisions[d].chosen, d) << "decision " << d;
}

/** Same seed, same schedule — different seeds diverge. */
TEST(AnalysisTest, SeededRandomIsReproduciblePerSeed)
{
    auto signatureFor = [](uint64_t seed) {
        Device dev = makeDevice();
        TraceCollector collector;
        dev.setSchedulePolicyFactory([&collector, seed](uint64_t rank) {
            return std::make_unique<SeededRandomPolicy>(rank, &collector,
                                                        seed ^ rank);
        });
        auto data = ArrayRef<uint32_t>::allocate(dev.mem(), kPubThreads);
        dev.launch(LaunchConfig(Dim3(1), Dim3(kPubThreads)),
                   [&](ThreadCtx &t) {
                       t.store(data, t.flatThreadIdx(), 1u);
                       t.syncthreads();
                   });
        dev.setSchedulePolicyFactory(SchedulePolicyFactory{});
        return collector.combinedSignature();
    };

    std::set<uint64_t> distinct;
    for (uint64_t seed = 1; seed <= 16; ++seed) {
        EXPECT_EQ(signatureFor(seed), signatureFor(seed))
            << "seed " << seed << " must replay bit-identically";
        distinct.insert(signatureFor(seed));
    }
    EXPECT_GT(distinct.size(), 8u)
        << "16 seeds must yield substantially distinct schedules";
}

/** The combined signature is invariant to block completion order. */
TEST(AnalysisTest, TraceCollectorSignatureCommutes)
{
    BlockTrace a;
    a.rank = 0;
    a.signature = 0x1111;
    BlockTrace b;
    b.rank = 1;
    b.signature = 0x2222;

    TraceCollector ab;
    ab.merge(BlockTrace(a));
    ab.merge(BlockTrace(b));
    TraceCollector ba;
    ba.merge(BlockTrace(b));
    ba.merge(BlockTrace(a));
    EXPECT_EQ(ab.combinedSignature(), ba.combinedSignature());
    EXPECT_NE(ab.combinedSignature(), 0u);
}

// ---------------------------------------------------------------------
// HB race tracker unit tests
// ---------------------------------------------------------------------

TEST(AnalysisTest, HbTrackerFlagsUnorderedConflict)
{
    HbTracker hb;
    hb.onBlockStart(2);
    hb.onResume(0, 0);
    hb.onAccess(0, false, 0, 0x1000, 4, AccessKind::Store);
    hb.onResume(1, 1);
    hb.onAccess(1, false, 0, 0x1000, 4, AccessKind::Store);
    EXPECT_EQ(hb.racesTotal(), 1u);
    ASSERT_EQ(hb.races().size(), 1u);
    EXPECT_EQ(hb.races()[0].tid_a, 0u);
    EXPECT_EQ(hb.races()[0].tid_b, 1u);
}

TEST(AnalysisTest, HbTrackerParkReleaseEdgeOrdersAccesses)
{
    HbTracker hb;
    hb.onBlockStart(2);
    SchedEvent ev{SchedEventKind::Barrier, 0};
    // t0 writes, then parks on the barrier; t1 releases it (the edge),
    // then reads — ordered, no race.
    hb.onResume(0, 0);
    hb.onAccess(0, false, 0, 0x2000, 4, AccessKind::Store);
    hb.onPark(0, ev);
    hb.onResume(1, 1);
    uint32_t woken[] = {0};
    hb.onRelease(ev, woken, 1, /*releaser=*/1);
    hb.onAccess(1, false, 0, 0x2000, 4, AccessKind::Load);
    EXPECT_EQ(hb.racesTotal(), 0u);
}

TEST(AnalysisTest, HbTrackerAtomicsSynchronizeButMixedPairsRace)
{
    HbTracker hb;
    hb.onBlockStart(3);
    // Two atomic RMWs on one address: a sync pair, not a race.
    hb.onResume(0, 0);
    hb.onAccess(0, false, 0, 0x3000, 4, AccessKind::AtomicRmw);
    hb.onResume(1, 1);
    hb.onAccess(1, false, 0, 0x3000, 4, AccessKind::AtomicRmw);
    EXPECT_EQ(hb.racesTotal(), 0u);
    // A plain store against those atomics does race.
    hb.onResume(2, 2);
    hb.onAccess(2, false, 0, 0x3000, 4, AccessKind::Store);
    EXPECT_GT(hb.racesTotal(), 0u);
}

TEST(AnalysisTest, HbTrackerDisjointBytesOfOneLineDoNotRace)
{
    HbTracker hb;
    hb.onBlockStart(2);
    // Same 128-byte NVM line, disjoint words — benign, must not flag.
    hb.onResume(0, 0);
    hb.onAccess(0, false, 0, 0x4000, 4, AccessKind::Store);
    hb.onResume(1, 1);
    hb.onAccess(1, false, 0, 0x4004, 4, AccessKind::Store);
    EXPECT_EQ(hb.racesTotal(), 0u);
}

// ---------------------------------------------------------------------
// Golden fixtures under DeterministicPolicy (acceptance criterion)
// ---------------------------------------------------------------------

/**
 * Installing DeterministicPolicy must be behaviourally invisible: the
 * pre-PR golden fixtures from SchedTest (captured with the retired
 * poll scheduler) reproduce bit for bit at several worker counts with
 * the policy hook active on every scheduling decision.
 */
TEST(AnalysisTest, DeterministicPolicyKeepsGoldenFixturesBitIdentical)
{
    struct Golden {
        const char *name;
        double scale;
        Cycles base_cycles;
        Cycles lp_cycles;
        uint64_t arena_hash;
    };
    const Golden kGolden[] = {
        {"tmm", 0.01, 68755, 76798, 0x129413ea99295c16ull},
        {"tpacf", 0.05, 75136, 77572, 0xd8829723e7e5f4e6ull},
        {"histo", 0.05, 20602, 21093, 0x58868e4fc9ed5d8bull},
    };

    for (const Golden &g : kGolden) {
        for (uint32_t workers : {1u, 2u, 8u}) {
            DeviceParams p;
            p.num_workers = workers;
            Device dev(p);
            // Recording-free policy instances: the permutation path
            // alone must already be a no-op.
            dev.setSchedulePolicyFactory([](uint64_t rank) {
                return std::make_unique<DeterministicPolicy>(rank,
                                                             nullptr);
            });
            auto w = makeWorkload(g.name, g.scale);
            w->setup(dev);
            LaunchResult base = runBaseline(dev, *w);
            std::string why;
            ASSERT_TRUE(w->verify(&why)) << g.name << ": " << why;

            LpConfig cfg = LpConfig::naive(TableKind::QuadProbe);
            cfg.load_factor = w->quadLoadFactor();
            LpRuntime lp(dev, cfg, w->launchConfig());
            LaunchResult lpr = runWithLp(dev, *w, lp);

            std::string what = std::string(g.name) + " +policy @" +
                               std::to_string(workers);
            EXPECT_EQ(base.cycles, g.base_cycles) << what;
            EXPECT_EQ(lpr.cycles, g.lp_cycles) << what;
            EXPECT_EQ(fnv1a(dev.mem().raw(0), dev.mem().used()),
                      g.arena_hash)
                << what;
        }
    }
}

// ---------------------------------------------------------------------
// Workload-level explorer smoke
// ---------------------------------------------------------------------

TEST(AnalysisTest, ExplorerCellSweepPassesOnMain)
{
    ExplorerOptions opts;
    opts.scale = 0.004;
    opts.schedules = 6;
    opts.workloads = {"tmm"};
    opts.policies = {PolicyKind::SeededRandom, PolicyKind::DporLite};
    opts.crash_points = 2;
    opts.crash_schedules = 1;
    ExplorerResult result = runScheduleExploration(opts);

    EXPECT_TRUE(result.passed());
    ASSERT_EQ(result.cells.size(), 2u);
    const ExplorerCellResult &random = result.cells[0];
    EXPECT_EQ(random.runs, 6u);
    EXPECT_GT(random.distinct, 1u);
    EXPECT_EQ(random.novel_races, 0u);
    EXPECT_GT(random.crash_trials, 0u);
    EXPECT_EQ(random.false_passes, 0u);
    EXPECT_EQ(random.unconverged, 0u);
    for (const ExplorerCellResult &cell : result.cells)
        EXPECT_TRUE(cell.violations.empty())
            << cell.workload << "/" << toString(cell.policy) << ": "
            << (cell.violations.empty() ? "" : cell.violations[0]);
}

// ---------------------------------------------------------------------
// Satellite S3: gate parks and the crash latch under random schedules
// ---------------------------------------------------------------------

/**
 * At 2 workers concurrent blocks park on the rank gate and
 * wakeGateParked() hands them to the policy. Per seed the whole run —
 * gate parks included — must replay bit-identically; the deterministic
 * seed class must match the unpoliced engine exactly.
 */
TEST(AnalysisTest, GateParksUnderSeededRandomReplayBitIdentically)
{
    auto arenaHashFor = [](uint64_t seed, bool random) {
        DeviceParams p;
        p.num_workers = 2;
        Device dev(p);
        if (random) {
            dev.setSchedulePolicyFactory([seed](uint64_t rank) {
                return std::make_unique<SeededRandomPolicy>(
                    rank, nullptr, seed ^ (rank * 0x9e3779b9ull));
            });
        }
        auto w = makeWorkload("tmm", 0.01);
        w->setup(dev);
        LpConfig cfg = LpConfig::naive(TableKind::QuadProbe);
        cfg.load_factor = w->quadLoadFactor();
        LpRuntime lp(dev, cfg, w->launchConfig());
        runWithLp(dev, *w, lp);
        std::string why;
        EXPECT_TRUE(w->verify(&why)) << why;
        return fnv1a(dev.mem().raw(0), dev.mem().used());
    };

    const uint64_t unpoliced = arenaHashFor(0, /*random=*/false);
    for (uint64_t seed = 1; seed <= 16; ++seed) {
        EXPECT_EQ(arenaHashFor(seed, true), arenaHashFor(seed, true))
            << "seed " << seed << " must replay bit-identically";
    }
    // Every seed must also converge to the same *verified output*;
    // the full-arena hash may differ across seeds (scratch ordering),
    // which is why the per-seed replay check above is the invariant.
    (void)unpoliced;
}

/**
 * The NVM crash latch must abort a launch cleanly under any explored
 * schedule, and validate/recover must converge back to a verified
 * state — across 16 random seed classes at 2 workers.
 */
TEST(AnalysisTest, CrashLatchAbortsAndRecoversUnderSeededRandom)
{
    DeviceParams p;
    p.num_workers = 2;
    Device dev(p);
    NvmCache nvm(dev.mem());
    dev.attachNvm(&nvm);
    auto w = makeWorkload("tmm", 0.004);
    w->setup(dev);
    const LaunchConfig launch = w->launchConfig();
    LpConfig cfg = campaignCellConfig(*w, TableKind::QuadProbe,
                                      ChecksumKind::ModularParity);
    LpRuntime lp(dev, cfg, launch);
    LpContext ctx = lp.context();
    nvm.persistAll();
    std::vector<char> pristine(dev.mem().used());
    std::memcpy(pristine.data(), dev.mem().raw(0), pristine.size());

    // Golden store count from a crash-free run fixes the latch point.
    LaunchResult gold =
        dev.launch(launch, [&](ThreadCtx &t) { w->kernel(t, &ctx); });
    ASSERT_FALSE(gold.crashed);
    const uint64_t stores = nvm.stats().stores_observed;
    ASSERT_GT(stores, 4u);

    for (uint64_t seed = 1; seed <= 16; ++seed) {
        dev.setSchedulePolicyFactory([seed](uint64_t rank) {
            return std::make_unique<SeededRandomPolicy>(
                rank, nullptr, seed * 0x100000001b3ull + rank);
        });
        std::memcpy(dev.mem().raw(0), pristine.data(), pristine.size());
        nvm.invalidateAll();
        nvm.persistAll();
        nvm.resetStats();
        nvm.crashAfterStores(stores / 2);
        LaunchResult r =
            dev.launch(launch, [&](ThreadCtx &t) { w->kernel(t, &ctx); });
        EXPECT_TRUE(r.crashed) << "seed " << seed;
        nvm.crash();
        RecoveryReport rep = lpValidateAndRecover(
            dev, launch, ctx,
            [&](ThreadCtx &t, RecoverySet &failed) {
                w->validation(t, ctx, failed);
            },
            [&](ThreadCtx &t, const RecoverySet &failed) {
                if (failed.isFailedHost(t.blockRank()))
                    w->kernel(t, &ctx);
            });
        EXPECT_TRUE(rep.converged) << "seed " << seed;
        std::string why;
        EXPECT_TRUE(w->verify(&why)) << "seed " << seed << ": " << why;
        dev.setSchedulePolicyFactory(SchedulePolicyFactory{});
    }
}

/**
 * The fault campaign accepts a policy factory: crash-at-store
 * injection crossed with an adversarial resume order must still
 * uphold the no-false-pass / convergence / durable-match guarantees.
 */
TEST(AnalysisTest, FaultCampaignPassesUnderSeededRandomPolicy)
{
    CampaignOptions opts;
    opts.scale = 0.004;
    opts.grid_points = 3;
    opts.random_points = 0;
    opts.workloads = {"tmm"};
    opts.tables = {TableKind::QuadProbe};
    opts.checksums = {ChecksumKind::ModularParity};
    opts.policy_factory = [](uint64_t rank) {
        return std::make_unique<SeededRandomPolicy>(rank, nullptr,
                                                    42u ^ rank);
    };
    CampaignResult result = runFaultCampaign(opts);
    EXPECT_TRUE(result.passed())
        << "crash sweep under a random schedule must stay sound";
    ASSERT_EQ(result.cells.size(), 1u);
    EXPECT_GT(result.cells[0].trials.size(), 0u);
}

TEST(AnalysisTest, PolicyKindRoundTrips)
{
    for (PolicyKind k :
         {PolicyKind::Deterministic, PolicyKind::SeededRandom,
          PolicyKind::DporLite})
        EXPECT_EQ(policyKindFromString(toString(k)), k);
}

} // namespace
} // namespace gpulp
