/**
 * @file
 * Unit tests for the file-backed persist log: CRC framing, torn-tail
 * truncation, corrupt-entry rejection, tombstones, compaction,
 * index-rebuild determinism, and the NvmCache restore path a crashed
 * process's successor runs.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mem/memory.h"
#include "nvm/nvm_cache.h"
#include "nvm/persist_log.h"

namespace gpulp {
namespace {

// Framing constants from the on-disk format (persist_log.h): an 8-byte
// file header, then 16-byte entry headers.
constexpr uint64_t kFileHeaderBytes = 8;
constexpr uint64_t kEntryHeaderBytes = 16;

/** Scratch directory deleted (with its files) on scope exit. */
class TempDir
{
  public:
    TempDir()
    {
        char tmpl[] = "/tmp/gpulp_plog_XXXXXX";
        const char *dir = ::mkdtemp(tmpl);
        EXPECT_NE(dir, nullptr);
        path_ = dir ? dir : "";
    }

    ~TempDir()
    {
        for (const std::string &f : files_)
            ::remove(f.c_str());
        if (!path_.empty())
            ::remove(path_.c_str());
    }

    std::string
    file(const std::string &name)
    {
        std::string p = path_ + "/" + name;
        files_.push_back(p);
        files_.push_back(p + ".compact.tmp");
        return p;
    }

  private:
    std::string path_;
    std::vector<std::string> files_;
};

std::vector<uint8_t>
patternPayload(uint8_t seed, size_t len)
{
    std::vector<uint8_t> p(len);
    for (size_t i = 0; i < len; ++i)
        p[i] = static_cast<uint8_t>(seed + 31 * i);
    return p;
}

uint64_t
fileSizeOnDisk(const std::string &path)
{
    struct stat st = {};
    EXPECT_EQ(::stat(path.c_str(), &st), 0);
    return static_cast<uint64_t>(st.st_size);
}

/** Overwrite @p len bytes at @p offset in the raw log file. */
void
stompFile(const std::string &path, uint64_t offset, const void *bytes,
          size_t len)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(bytes, 1, len, f), len);
    ASSERT_EQ(std::fclose(f), 0);
}

/** Append @p len raw bytes to the log file (simulates a torn write). */
void
appendGarbage(const std::string &path, size_t len)
{
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::vector<uint8_t> junk(len, 0xa5);
    ASSERT_EQ(std::fwrite(junk.data(), 1, len, f), len);
    ASSERT_EQ(std::fclose(f), 0);
}

TEST(PersistLogCrcTest, MatchesIeeeCheckValue)
{
    // The canonical CRC32 check vector.
    EXPECT_EQ(persistLogCrc32("123456789", 9), 0xcbf43926u);
    EXPECT_EQ(persistLogCrc32("", 0), 0u);
}

TEST(PersistLogTest, RoundTripAcrossReopen)
{
    TempDir dir;
    std::string path = dir.file("log");
    std::vector<uint8_t> p1 = patternPayload(1, 128);
    std::vector<uint8_t> p2 = patternPayload(2, 64);
    {
        auto log = PersistLog::open(path, {}, /*truncate=*/true);
        ASSERT_NE(log, nullptr);
        log->append(0x1000, p1.data(), static_cast<uint32_t>(p1.size()));
        log->append(0x2000, p2.data(), static_cast<uint32_t>(p2.size()));
        log->flush();
        EXPECT_EQ(log->liveEntries(), 2u);
        EXPECT_EQ(log->stats().entries_appended, 2u);
        EXPECT_EQ(log->stats().payload_bytes_appended, 192u);
    }
    auto log = PersistLog::open(path, {}, /*truncate=*/false);
    ASSERT_NE(log, nullptr);
    EXPECT_EQ(log->liveEntries(), 2u);
    EXPECT_EQ(log->stats().entries_replayed, 2u);
    std::vector<uint8_t> got;
    ASSERT_TRUE(log->get(0x1000, &got));
    EXPECT_EQ(got, p1);
    ASSERT_TRUE(log->get(0x2000, &got));
    EXPECT_EQ(got, p2);
    EXPECT_FALSE(log->get(0x3000, &got));
}

TEST(PersistLogTest, LastEntryWinsForAKey)
{
    TempDir dir;
    auto log = PersistLog::open(dir.file("log"), {}, true);
    ASSERT_NE(log, nullptr);
    std::vector<uint8_t> old_p = patternPayload(3, 32);
    std::vector<uint8_t> new_p = patternPayload(4, 48);
    log->append(0x40, old_p.data(), static_cast<uint32_t>(old_p.size()));
    log->append(0x40, new_p.data(), static_cast<uint32_t>(new_p.size()));
    std::vector<uint8_t> got;
    ASSERT_TRUE(log->get(0x40, &got));
    EXPECT_EQ(got, new_p);
    EXPECT_EQ(log->liveEntries(), 1u);
    // The superseded entry is dead weight until compaction.
    EXPECT_EQ(log->wastedBytes(), kEntryHeaderBytes + old_p.size());
}

TEST(PersistLogTest, UnflushedBatchIsLostPendingDrop)
{
    TempDir dir;
    std::string path = dir.file("log");
    auto log = PersistLog::open(path, {}, true);
    ASSERT_NE(log, nullptr);
    std::vector<uint8_t> durable = patternPayload(5, 100);
    log->append(0x100, durable.data(),
                static_cast<uint32_t>(durable.size()));
    log->flush();
    std::vector<uint8_t> volatile_p = patternPayload(6, 100);
    log->append(0x200, volatile_p.data(),
                static_cast<uint32_t>(volatile_p.size()));
    // The second append sits in the batch buffer: the file has not
    // grown. dropPending() is the power cut that loses the queue.
    EXPECT_EQ(fileSizeOnDisk(path),
              kFileHeaderBytes + kEntryHeaderBytes + durable.size());
    log->dropPending();
    std::vector<uint8_t> got;
    EXPECT_TRUE(log->get(0x100, &got));
    EXPECT_EQ(got, durable);
    EXPECT_FALSE(log->get(0x200, &got));
}

TEST(PersistLogTest, TornTailHeaderIsTruncatedOnReopen)
{
    TempDir dir;
    std::string path = dir.file("log");
    std::vector<uint8_t> p = patternPayload(7, 256);
    {
        auto log = PersistLog::open(path, {}, true);
        ASSERT_NE(log, nullptr);
        log->append(0x80, p.data(), static_cast<uint32_t>(p.size()));
        log->flush();
    }
    const uint64_t intact = fileSizeOnDisk(path);
    // A crash mid-append leaves half an entry header.
    appendGarbage(path, kEntryHeaderBytes / 2);
    auto log = PersistLog::open(path, {}, false);
    ASSERT_NE(log, nullptr);
    EXPECT_EQ(log->stats().torn_tail_bytes, kEntryHeaderBytes / 2);
    EXPECT_EQ(fileSizeOnDisk(path), intact);
    std::vector<uint8_t> got;
    ASSERT_TRUE(log->get(0x80, &got));
    EXPECT_EQ(got, p);
}

TEST(PersistLogTest, TornTailPayloadIsTruncatedOnReopen)
{
    TempDir dir;
    std::string path = dir.file("log");
    std::vector<uint8_t> p = patternPayload(8, 128);
    {
        auto log = PersistLog::open(path, {}, true);
        ASSERT_NE(log, nullptr);
        log->append(0x80, p.data(), static_cast<uint32_t>(p.size()));
        log->flush();
    }
    const uint64_t intact = fileSizeOnDisk(path);
    // A complete header promising 128 payload bytes, then the crash:
    // only 5 arrive. Header + stub must both be truncated away.
    struct {
        uint32_t crc = 0xdeadbeef;
        uint32_t size = 128;
        uint64_t key = 0xf00;
    } hdr;
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(&hdr, 1, sizeof(hdr), f), sizeof(hdr));
    uint8_t stub[5] = {1, 2, 3, 4, 5};
    ASSERT_EQ(std::fwrite(stub, 1, sizeof(stub), f), sizeof(stub));
    ASSERT_EQ(std::fclose(f), 0);

    auto log = PersistLog::open(path, {}, false);
    ASSERT_NE(log, nullptr);
    EXPECT_EQ(log->stats().torn_tail_bytes, kEntryHeaderBytes + 5);
    EXPECT_EQ(fileSizeOnDisk(path), intact);
    EXPECT_EQ(log->liveEntries(), 1u);
}

TEST(PersistLogTest, CorruptCompleteEntryIsRejectedNotTruncated)
{
    TempDir dir;
    std::string path = dir.file("log");
    std::vector<uint8_t> p1 = patternPayload(9, 64);
    std::vector<uint8_t> p2 = patternPayload(10, 64);
    {
        auto log = PersistLog::open(path, {}, true);
        ASSERT_NE(log, nullptr);
        log->append(0x100, p1.data(), static_cast<uint32_t>(p1.size()));
        log->append(0x200, p2.data(), static_cast<uint32_t>(p2.size()));
        log->flush();
    }
    // Bit-rot one payload byte of the *first* entry. Its framing is
    // intact, so the scan must reject it and keep going: the second
    // entry stays live and nothing is truncated.
    uint8_t flipped = static_cast<uint8_t>(~p1[10]);
    stompFile(path, kFileHeaderBytes + kEntryHeaderBytes + 10, &flipped, 1);
    const uint64_t before = fileSizeOnDisk(path);

    auto log = PersistLog::open(path, {}, false);
    ASSERT_NE(log, nullptr);
    EXPECT_EQ(log->stats().crc_rejected, 1u);
    EXPECT_EQ(log->stats().torn_tail_bytes, 0u);
    EXPECT_EQ(fileSizeOnDisk(path), before);
    EXPECT_EQ(log->liveEntries(), 1u);
    std::vector<uint8_t> got;
    EXPECT_FALSE(log->get(0x100, &got));
    ASSERT_TRUE(log->get(0x200, &got));
    EXPECT_EQ(got, p2);
}

TEST(PersistLogTest, TombstoneThenCompactionRoundTrip)
{
    TempDir dir;
    std::string path = dir.file("log");
    std::vector<uint8_t> keep = patternPayload(11, 200);
    std::vector<uint8_t> dead = patternPayload(12, 200);
    {
        auto log = PersistLog::open(path, {}, true);
        ASSERT_NE(log, nullptr);
        log->append(0x100, dead.data(),
                    static_cast<uint32_t>(dead.size()));
        log->append(0x200, keep.data(),
                    static_cast<uint32_t>(keep.size()));
        log->appendTombstone(0x100);
        log->flush();
        EXPECT_EQ(log->liveEntries(), 1u);
        EXPECT_EQ(log->stats().tombstones_appended, 1u);
        const uint64_t fat = fileSizeOnDisk(path);
        log->compact();
        EXPECT_EQ(log->stats().compactions, 1u);
        EXPECT_LT(fileSizeOnDisk(path), fat);
        EXPECT_EQ(log->wastedBytes(), 0u);
    }
    // The compacted file must round-trip: key 0x200 lives, 0x100 is
    // gone for good (its tombstone was compacted away with it).
    auto log = PersistLog::open(path, {}, false);
    ASSERT_NE(log, nullptr);
    EXPECT_EQ(log->liveEntries(), 1u);
    std::vector<uint8_t> got;
    EXPECT_FALSE(log->get(0x100, &got));
    ASSERT_TRUE(log->get(0x200, &got));
    EXPECT_EQ(got, keep);
}

TEST(PersistLogTest, AutoCompactionBoundsGrowth)
{
    TempDir dir;
    PersistLogParams params;
    params.batch_bytes = 256;
    params.fsync_on_flush = false;
    params.compact_min_bytes = 2048;
    params.compact_waste_threshold = 0.5;
    auto log = PersistLog::open(dir.file("log"), params, true);
    ASSERT_NE(log, nullptr);
    // Overwrite one key until superseded entries dominate the file;
    // the flush path must compact without being asked.
    std::vector<uint8_t> p = patternPayload(13, 128);
    for (int i = 0; i < 200; ++i) {
        p[0] = static_cast<uint8_t>(i);
        log->append(0x40, p.data(), static_cast<uint32_t>(p.size()));
        log->flush();
    }
    EXPECT_GE(log->stats().compactions, 1u);
    EXPECT_GT(log->stats().compact_bytes_reclaimed, 0u);
    // File stays near one live entry, not 200 appends.
    EXPECT_LE(log->fileBytes(),
              4 * (kEntryHeaderBytes + p.size()) + kFileHeaderBytes);
    std::vector<uint8_t> got;
    ASSERT_TRUE(log->get(0x40, &got));
    EXPECT_EQ(got[0], 199);
}

TEST(PersistLogTest, IndexRebuildIsDeterministic)
{
    TempDir dir;
    std::string path = dir.file("log");
    {
        auto log = PersistLog::open(path, {}, true);
        ASSERT_NE(log, nullptr);
        // Interleave appends, overwrites and tombstones so the index
        // is a nontrivial function of the scan.
        for (uint64_t k = 0; k < 32; ++k) {
            std::vector<uint8_t> p =
                patternPayload(static_cast<uint8_t>(k), 64 + 8 * (k % 5));
            log->append(0x1000 + k * 0x80, p.data(),
                        static_cast<uint32_t>(p.size()));
        }
        for (uint64_t k = 0; k < 32; k += 3)
            log->appendTombstone(0x1000 + k * 0x80);
        for (uint64_t k = 0; k < 32; k += 4) {
            std::vector<uint8_t> p =
                patternPayload(static_cast<uint8_t>(0x80 + k), 72);
            log->append(0x1000 + k * 0x80, p.data(),
                        static_cast<uint32_t>(p.size()));
        }
        log->flush();
    }
    auto first = PersistLog::open(path, {}, false);
    auto second = PersistLog::open(path, {}, false);
    ASSERT_NE(first, nullptr);
    ASSERT_NE(second, nullptr);
    auto a = first->indexSnapshot();
    auto b = second->indexSnapshot();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].first, b[i].first);
        EXPECT_EQ(a[i].second.offset, b[i].second.offset);
        EXPECT_EQ(a[i].second.size, b[i].second.size);
    }
    // Compaction relocates entries but must preserve the live set and
    // every payload byte.
    first->compact();
    auto compacted = first->indexSnapshot();
    ASSERT_EQ(compacted.size(), b.size());
    for (size_t i = 0; i < compacted.size(); ++i) {
        EXPECT_EQ(compacted[i].first, b[i].first);
        std::vector<uint8_t> x, y;
        ASSERT_TRUE(first->get(compacted[i].first, &x));
        ASSERT_TRUE(second->get(b[i].first, &y));
        EXPECT_EQ(x, y);
    }
}

TEST(PersistLogEnvTest, SelectsBackendFromEnvironment)
{
    TempDir dir;
    std::string path = dir.file("log");
    ::unsetenv("GPULP_NVM_DEVICE");
    EXPECT_EQ(persistLogFromEnv(), nullptr);
    ::setenv("GPULP_NVM_DEVICE", "mem", 1);
    EXPECT_EQ(persistLogFromEnv(), nullptr);
    ::setenv("GPULP_NVM_DEVICE", ("file:" + path).c_str(), 1);
    auto log = persistLogFromEnv(/*truncate=*/true);
    ASSERT_NE(log, nullptr);
    EXPECT_EQ(log->path(), path);
    ::unsetenv("GPULP_NVM_DEVICE");
}

// NvmCache integration ------------------------------------------------------

TEST(PersistLogNvmTest, WritebacksReachTheLogAndRestoreElsewhere)
{
    TempDir dir;
    std::string path = dir.file("log");
    PersistLogParams params;
    params.batch_bytes = 512;
    NvmParams nparams;
    nparams.cache_bytes = 1024;
    nparams.line_bytes = 128;
    nparams.associativity = 4;

    std::vector<uint32_t> expect(1024);
    Addr first_base = 0;
    {
        GlobalMemory mem(1 << 20);
        NvmCache nvm(mem, nparams);
        auto log = PersistLog::open(path, params, true);
        ASSERT_NE(log, nullptr);
        nvm.attachPersistLog(log.get());
        mem.setObserver(&nvm);
        Addr a = mem.alloc(expect.size() * sizeof(uint32_t));
        first_base = a;
        for (size_t i = 0; i < expect.size(); ++i) {
            expect[i] = static_cast<uint32_t>(0x9e370001u * (i + 1));
            mem.write<uint32_t>(a + i * sizeof(uint32_t), expect[i]);
        }
        nvm.persistAll();
        EXPECT_GT(log->stats().entries_appended, 0u);
    }
    // A different process would rebuild the same arena layout, reopen
    // the log and restore. Model it with fresh objects.
    GlobalMemory mem(1 << 20);
    NvmCache nvm(mem, nparams);
    auto log = PersistLog::open(path, params, false);
    ASSERT_NE(log, nullptr);
    EXPECT_GT(log->stats().entries_replayed, 0u);
    nvm.attachPersistLog(log.get());
    mem.setObserver(&nvm);
    // The fresh "process" must lay out memory identically — the log
    // replays by raw arena address.
    Addr a = mem.alloc(expect.size() * sizeof(uint32_t));
    ASSERT_EQ(a, first_base);
    nvm.restoreFromLog();
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(mem.read<uint32_t>(a + i * sizeof(uint32_t)), expect[i])
            << "word " << i;
    // The restored image is also the persisted image.
    EXPECT_TRUE(nvm.isPersisted(a, expect.size() * sizeof(uint32_t)));
}

TEST(PersistLogNvmTest, ArenaResetTombstonesTheLog)
{
    TempDir dir;
    GlobalMemory mem(1 << 20);
    NvmParams nparams;
    nparams.cache_bytes = 1024;
    nparams.line_bytes = 128;
    nparams.associativity = 4;
    NvmCache nvm(mem, nparams);
    auto log = PersistLog::open(dir.file("log"), {}, true);
    ASSERT_NE(log, nullptr);
    nvm.attachPersistLog(log.get());
    mem.setObserver(&nvm);
    Addr a = mem.alloc(4096);
    for (int i = 0; i < 1024; ++i)
        mem.write<uint32_t>(a + i * 4, 0xabad1deau);
    nvm.persistAll();
    EXPECT_GT(log->liveEntries(), 0u);
    // Reset kills the allocation; a reused log must not replay it.
    mem.reset();
    EXPECT_EQ(log->liveEntries(), 0u);
    EXPECT_GT(log->stats().tombstones_appended, 0u);
}

} // namespace
} // namespace gpulp
