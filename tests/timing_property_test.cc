/**
 * @file
 * Property tests on the timing model — the invariants every paper
 * result rests on, checked over parameter sweeps rather than single
 * points: work monotonicity, SM scaling, contention ordering,
 * bandwidth-roofline behaviour and determinism.
 */

#include <gtest/gtest.h>

#include "core/runtime.h"
#include "sim/device.h"
#include "workloads/workload.h" // overheadOf

namespace gpulp {
namespace {

// ---------------------------------------------------------------------
// Determinism: identical launches produce identical cycle counts.
// ---------------------------------------------------------------------

TEST(TimingPropertyTest, LaunchesAreDeterministic)
{
    auto run = [] {
        Device dev;
        auto data = ArrayRef<uint32_t>::allocate(dev.mem(), 4096);
        return dev
            .launch(LaunchConfig(Dim3(32), Dim3(64)),
                    [&](ThreadCtx &t) {
                        t.compute(t.flatThreadIdx());
                        t.atomicAdd(data.addrOf(t.blockRank()), 1);
                        t.syncthreads();
                        t.store(data,
                                2048 + t.globalThreadIdx() % 2048, 1u);
                    })
            .cycles;
    };
    Cycles first = run();
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(run(), first);
}

// ---------------------------------------------------------------------
// Monotonicity in work.
// ---------------------------------------------------------------------

class ComputeSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(ComputeSweep, MoreComputeNeverRunsFaster)
{
    Device dev;
    uint32_t work = GetParam();
    auto run = [&](uint32_t ops) {
        return dev
            .launch(LaunchConfig(Dim3(8), Dim3(32)),
                    [&](ThreadCtx &t) { t.compute(ops); })
            .cycles;
    };
    EXPECT_LE(run(work), run(work * 2));
    EXPECT_LE(run(work), run(work + 1));
}

INSTANTIATE_TEST_SUITE_P(Work, ComputeSweep,
                         ::testing::Values(1u, 100u, 10000u));

TEST(TimingPropertyTest, MoreBlocksNeverRunFaster)
{
    Device dev;
    Cycles prev = 0;
    for (uint32_t blocks : {8u, 80u, 160u, 640u}) {
        Cycles cycles =
            dev.launch(LaunchConfig(Dim3(blocks), Dim3(32)),
                       [&](ThreadCtx &t) { t.compute(500); })
                .cycles;
        EXPECT_GE(cycles, prev) << blocks << " blocks";
        prev = cycles;
    }
}

TEST(TimingPropertyTest, MoreSmsNeverRunSlower)
{
    Cycles prev = ~Cycles{0};
    for (uint32_t sms : {10u, 20u, 40u, 80u}) {
        DeviceParams params;
        params.timing.num_sms = sms;
        Device dev(params);
        Cycles cycles =
            dev.launch(LaunchConfig(Dim3(160), Dim3(32)),
                       [&](ThreadCtx &t) { t.compute(1000); })
                .cycles;
        EXPECT_LE(cycles, prev) << sms << " SMs";
        prev = cycles;
    }
}

TEST(TimingPropertyTest, PerfectSmScalingForUniformBlocks)
{
    // 160 uniform blocks on 80 SMs must take exactly 2 waves.
    DeviceParams params;
    params.timing.num_sms = 80;
    Device dev(params);
    auto wave = [&](uint32_t blocks) {
        return dev
            .launch(LaunchConfig(Dim3(blocks), Dim3(1)),
                    [&](ThreadCtx &t) { t.compute(10000); })
            .critical_path;
    };
    EXPECT_EQ(wave(160), 2 * wave(80));
}

// ---------------------------------------------------------------------
// Contention ordering.
// ---------------------------------------------------------------------

TEST(TimingPropertyTest, ContentionOrderingHolds)
{
    // same-address atomics >= spread atomics >= plain stores, for any
    // thread count.
    for (uint32_t threads : {32u, 128u, 512u}) {
        Device dev;
        auto data = ArrayRef<uint32_t>::allocate(dev.mem(), 1024);
        LaunchConfig cfg(Dim3(16), Dim3(threads));
        Cycles hot = dev.launch(cfg,
                                [&](ThreadCtx &t) {
                                    t.atomicAdd(data.addrOf(0), 1);
                                })
                         .cycles;
        Cycles spread =
            dev.launch(cfg,
                       [&](ThreadCtx &t) {
                           t.atomicAdd(data.addrOf(t.globalThreadIdx() %
                                                   1024),
                                       1);
                       })
                .cycles;
        Cycles stores =
            dev.launch(cfg,
                       [&](ThreadCtx &t) {
                           t.store(data,
                                   t.globalThreadIdx() % 1024, 1u);
                       })
                .cycles;
        EXPECT_GE(hot, spread) << threads;
        EXPECT_GE(spread, stores) << threads;
    }
}

TEST(TimingPropertyTest, LockCostGrowsWithContenders)
{
    Device dev;
    auto lock = ArrayRef<uint32_t>::allocate(dev.mem(), 1);
    Cycles prev = 0;
    for (uint32_t blocks : {4u, 16u, 64u, 256u}) {
        Cycles cycles = dev.launch(LaunchConfig(Dim3(blocks), Dim3(1)),
                                   [&](ThreadCtx &t) {
                                       t.lockAcquire(lock.addrOf(0));
                                       t.compute(50);
                                       t.lockRelease(lock.addrOf(0));
                                   })
                            .cycles;
        EXPECT_GT(cycles, prev) << blocks << " contenders";
        prev = cycles;
    }
}

// ---------------------------------------------------------------------
// Bandwidth roofline.
// ---------------------------------------------------------------------

TEST(TimingPropertyTest, RooflineKicksInOnlyUnderTraffic)
{
    DeviceParams params;
    params.timing.bytes_per_cycle = 4.0; // tiny bandwidth
    Device dev(params);
    const size_t n = 64 * 1024;
    auto a = ArrayRef<uint64_t>::allocate(dev.mem(), n);

    // Compute-only kernel: roofline irrelevant.
    auto compute = dev.launch(LaunchConfig(Dim3(16), Dim3(64)),
                              [&](ThreadCtx &t) { t.compute(5000); });
    EXPECT_EQ(compute.cycles, compute.critical_path);

    // Streaming kernel: roofline dominates.
    auto stream = dev.launch(
        LaunchConfig(Dim3(static_cast<uint32_t>(n / 256)), Dim3(256)),
        [&](ThreadCtx &t) {
            t.store(a, t.globalThreadIdx(),
                    t.load(a, t.globalThreadIdx()) + 1);
        });
    EXPECT_EQ(stream.cycles, stream.bandwidth_cycles);
    EXPECT_GT(stream.bandwidth_cycles, stream.critical_path);
}

TEST(TimingPropertyTest, TrafficAccountingMatchesAccessBytes)
{
    Device dev;
    const uint32_t threads = 128;
    auto a = ArrayRef<uint64_t>::allocate(dev.mem(), threads);
    auto r = dev.launch(LaunchConfig(Dim3(1), Dim3(threads)),
                        [&](ThreadCtx &t) {
                            uint64_t v = t.load(a, t.flatThreadIdx());
                            t.store(a, t.flatThreadIdx(), v + 1);
                        });
    EXPECT_EQ(r.traffic.bytes_read, threads * sizeof(uint64_t));
    EXPECT_EQ(r.traffic.bytes_written, threads * sizeof(uint64_t));
    EXPECT_EQ(r.traffic.global_loads, threads);
    EXPECT_EQ(r.traffic.global_stores, threads);
}

// ---------------------------------------------------------------------
// LP overhead properties.
// ---------------------------------------------------------------------

class LpOverheadSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(LpOverheadSweep, OverheadShrinksAsBlocksGrow)
{
    // The fractional LP cost must fall as per-block work grows — the
    // reason TPACF (long blocks) is nearly free and MRI-GRIDDING (tiny
    // blocks) is the worst case.
    const uint32_t threads = GetParam();
    auto overhead = [&](uint32_t work) {
        Device dev;
        LaunchConfig cfg(Dim3(64), Dim3(threads));
        auto out = ArrayRef<uint32_t>::allocate(
            dev.mem(), cfg.numBlocks() * threads);
        Cycles base =
            dev.launch(cfg,
                       [&](ThreadCtx &t) {
                           t.compute(work);
                           t.store(out, t.globalThreadIdx(), 1u);
                       })
                .cycles;
        LpRuntime lp(dev, LpConfig::scalable(), cfg);
        LpContext ctx = lp.context();
        Cycles with_lp =
            dev.launch(cfg,
                       [&](ThreadCtx &t) {
                           ChecksumAccum acc = ctx.makeAccum();
                           t.compute(work);
                           t.store(out, t.globalThreadIdx(), 1u);
                           acc.protectU32(t, 1u);
                           lpCommitRegion(t, ctx, acc);
                       })
                .cycles;
        return overheadOf(base, with_lp);
    };
    double small = overhead(200);
    double medium = overhead(2000);
    double large = overhead(20000);
    EXPECT_GT(small, medium);
    EXPECT_GT(medium, large);
    EXPECT_LT(large, 0.03) << "long blocks must be nearly free";
}

INSTANTIATE_TEST_SUITE_P(BlockShapes, LpOverheadSweep,
                         ::testing::Values(32u, 64u, 256u));

} // namespace
} // namespace gpulp
