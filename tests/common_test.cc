/**
 * @file
 * Unit tests for the common substrate: PRNG, float bit conversion,
 * statistics helpers and text tables.
 */

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/floatbits.h"
#include "common/prng.h"
#include "common/stats.h"
#include "common/table.h"

namespace gpulp {
namespace {

// ---------------------------------------------------------------------
// Prng
// ---------------------------------------------------------------------

TEST(PrngTest, DeterministicForSameSeed)
{
    Prng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(PrngTest, DifferentSeedsDiverge)
{
    Prng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(PrngTest, NextBelowRespectsBound)
{
    Prng rng(7);
    for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(PrngTest, NextBelowCoversAllResidues)
{
    Prng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(PrngTest, NextRangeInclusive)
{
    Prng rng(3);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        int64_t v = rng.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(PrngTest, NextDoubleInUnitInterval)
{
    Prng rng(5);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(PrngTest, NextDoubleMeanIsRoughlyHalf)
{
    Prng rng(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(PrngTest, NextFloatRange)
{
    Prng rng(17);
    for (int i = 0; i < 1000; ++i) {
        float f = rng.nextFloat(-3.0f, 9.0f);
        EXPECT_GE(f, -3.0f);
        EXPECT_LT(f, 9.0f);
    }
}

TEST(PrngTest, NextBoolProbability)
{
    Prng rng(19);
    int trues = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        trues += rng.nextBool(0.25);
    EXPECT_NEAR(static_cast<double>(trues) / n, 0.25, 0.02);
}

// ---------------------------------------------------------------------
// floatbits — Fig. 2 of the paper.
// ---------------------------------------------------------------------

TEST(FloatBitsTest, PaperFig2Example)
{
    // Fig. 2: 3.5f --> ordered integer 1080033280.
    EXPECT_EQ(floatToOrderedInt(3.5f), 1080033280u);
}

TEST(FloatBitsTest, RoundTrips)
{
    for (float v : {0.0f, -0.0f, 1.0f, -1.0f, 3.5f, 1e-38f, 1e38f}) {
        EXPECT_EQ(orderedIntToFloat(floatToOrderedInt(v)), v);
    }
}

TEST(FloatBitsTest, FieldExtractionFor3Point5)
{
    // 3.5 = 1.75 * 2^1: sign 0, biased exponent 128, mantissa 0.75.
    EXPECT_EQ(floatSignBit(3.5f), 0u);
    EXPECT_EQ(floatExponentBits(3.5f), 128u);
    EXPECT_EQ(floatMantissaBits(3.5f), 0x600000u);
}

TEST(FloatBitsTest, SignBitDetected)
{
    EXPECT_EQ(floatSignBit(-3.5f), 1u);
    EXPECT_NE(floatToOrderedInt(3.5f), floatToOrderedInt(-3.5f));
}

TEST(FloatBitsTest, ExponentCorruptionChangesOrderedInt)
{
    // A persistency failure flipping only exponent bits must be
    // detectable: the ordered int covers the exponent field.
    uint32_t bits = floatToOrderedInt(3.5f);
    uint32_t corrupted = bits ^ (1u << 25); // flip an exponent bit
    EXPECT_NE(orderedIntToFloat(corrupted), 3.5f);
    EXPECT_NE(corrupted, bits);
}

TEST(FloatBitsTest, DoubleRoundTrips)
{
    for (double v : {0.0, -1.0, 3.5, 1e-300, 1e300}) {
        EXPECT_EQ(orderedIntToDouble(doubleToOrderedInt(v)), v);
    }
}

// ---------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------

TEST(StatsTest, GeomeanOfEqualValues)
{
    std::vector<double> v{2.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(geomean(v), 2.0);
}

TEST(StatsTest, GeomeanBasic)
{
    std::vector<double> v{1.0, 4.0};
    EXPECT_DOUBLE_EQ(geomean(v), 2.0);
}

TEST(StatsTest, GeomeanOverheadMatchesPaperConvention)
{
    // Two benchmarks with 10% and 21% overhead: gmean slowdown factor is
    // sqrt(1.1 * 1.21) = 1.1537..., i.e. 15.37% overhead.
    std::vector<double> o{0.10, 0.21};
    EXPECT_NEAR(geomeanOverhead(o), std::sqrt(1.1 * 1.21) - 1.0, 1e-12);
}

TEST(StatsTest, GeomeanOverheadHandlesZeroAndNegative)
{
    std::vector<double> o{0.0, -0.01, 0.02};
    double g = geomeanOverhead(o);
    EXPECT_GT(g, -0.01);
    EXPECT_LT(g, 0.02);
}

TEST(StatsTest, MeanBasic)
{
    std::vector<double> v{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(mean(v), 2.0);
}

TEST(StatsTest, SummaryTracksExtremesAndMean)
{
    Summary s;
    for (double v : {3.0, -1.0, 5.0, 2.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.25);
    EXPECT_DOUBLE_EQ(s.sum(), 9.0);
}

// ---------------------------------------------------------------------
// TextTable
// ---------------------------------------------------------------------

TEST(TextTableTest, RendersHeadersAndRows)
{
    TextTable table({"Name", "Overhead"});
    table.addRow({"TMM", "6.2%"});
    table.addRow({"GeoMean", "2.1%"});
    std::string text = table.render();
    EXPECT_NE(text.find("Name"), std::string::npos);
    EXPECT_NE(text.find("TMM"), std::string::npos);
    EXPECT_NE(text.find("6.2%"), std::string::npos);
    EXPECT_NE(text.find("GeoMean"), std::string::npos);
}

TEST(TextTableTest, ColumnsAligned)
{
    TextTable table({"A", "B"});
    table.addRow({"xxxx", "y"});
    std::string text = table.render();
    // Every line should have the same length in a rendered table.
    size_t first_len = text.find('\n');
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        ASSERT_NE(eol, std::string::npos);
        EXPECT_EQ(eol - pos, first_len);
        pos = eol + 1;
    }
}

TEST(TextTableTest, FormatHelpers)
{
    EXPECT_EQ(TextTable::num(2.345, 2), "2.35");
    EXPECT_EQ(TextTable::pct(0.294, 1), "29.4%");
    EXPECT_EQ(TextTable::factor(36.62, 2), "36.62x");
    EXPECT_EQ(TextTable::factor(4491.87), "4492x");
}

} // namespace
} // namespace gpulp
