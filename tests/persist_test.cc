/**
 * @file
 * Tests for the persistency-model matrix (core/persist.h): model
 * selection and labels, the PersistStrategy store protocol under
 * strict/epoch-block/epoch-kernel/eager, durable commit verdicts, and
 * the model-generic persistRecover() driver — including crashes that
 * strike recovery itself.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/persist.h"

namespace gpulp {
namespace {

const PersistModel kStrategyModels[] = {
    PersistModel::Eager,
    PersistModel::Strict,
    PersistModel::EpochBlock,
    PersistModel::EpochKernel,
};

TEST(PersistModelConfigTest, NamesRoundTrip)
{
    const PersistModel all[] = {
        PersistModel::Lazy,        PersistModel::Eager,
        PersistModel::Strict,      PersistModel::EpochBlock,
        PersistModel::EpochKernel,
    };
    for (PersistModel m : all)
        EXPECT_EQ(persistModelFromString(toString(m)), m);
}

TEST(PersistModelConfigTest, EnvSelectsModel)
{
    ::setenv("GPULP_PERSIST", "epoch-block", 1);
    LpConfig cfg = applyConfigEnv(LpConfig::scalable());
    ::unsetenv("GPULP_PERSIST");
    EXPECT_EQ(cfg.persist, PersistModel::EpochBlock);
}

TEST(PersistModelConfigTest, LabelCarriesNonLazyModel)
{
    LpConfig cfg = LpConfig::scalable();
    EXPECT_EQ(configLabel(cfg).find("lazy"), std::string::npos)
        << "the default model stays implicit in labels";
    cfg.persist = PersistModel::Strict;
    EXPECT_NE(configLabel(cfg).find("strict"), std::string::npos);
}

TEST(PersistRuntimeTest, LazyModelWrapsLpRuntime)
{
    Device dev;
    LaunchConfig cfg(Dim3(2), Dim3(4));
    PersistRuntime pr(dev, LpConfig::scalable(), cfg);
    EXPECT_EQ(pr.model(), PersistModel::Lazy);
    EXPECT_EQ(pr.strategy(), nullptr);
    ASSERT_NE(pr.lazy(), nullptr);
    EXPECT_EQ(pr.context().strategy, nullptr);
}

TEST(PersistRuntimeTest, NonLazyModelsExposeAStrategy)
{
    for (PersistModel m : kStrategyModels) {
        Device dev;
        LaunchConfig cfg(Dim3(2), Dim3(4));
        LpConfig lpc = LpConfig::scalable();
        lpc.persist = m;
        PersistRuntime pr(dev, lpc, cfg, /*undo_entries_per_thread=*/2);
        ASSERT_NE(pr.strategy(), nullptr) << toString(m);
        EXPECT_EQ(pr.strategy()->model(), m);
        EXPECT_EQ(pr.lazy(), nullptr);
        EXPECT_EQ(pr.context().strategy, pr.strategy());
        EXPECT_GT(pr.footprintBytes(), 0u);
    }
}

/** One protected store per thread, then the region commit. */
KernelFn
storeKernel(const LpContext *lp, ArrayRef<uint32_t> out)
{
    return [lp, out](ThreadCtx &t) {
        PersistAccum acc = makePersistAccum(lp);
        uint64_t i = t.globalThreadIdx();
        persistStoreU32(t, lp, acc, out,  i,
                        static_cast<uint32_t>(1000 + i));
        persistRegionEnd(t, lp, acc);
    };
}

TEST(PersistStrategyTest, CommittedRegionsSurviveACrash)
{
    for (PersistModel m : kStrategyModels) {
        Device dev;
        NvmCache nvm(dev.mem(), NvmParams{});
        dev.attachNvm(&nvm);
        LaunchConfig cfg(Dim3(2), Dim3(4));
        auto out = ArrayRef<uint32_t>::allocate(dev.mem(), 8);
        LpConfig lpc = LpConfig::scalable();
        lpc.persist = m;
        PersistRuntime pr(dev, lpc, cfg, 2);
        LpContext ctx = pr.context();
        nvm.persistAll();

        dev.launch(cfg, storeKernel(&ctx, out));
        nvm.crash(); // power failure right after the kernel
        for (uint64_t i = 0; i < 8; ++i)
            EXPECT_EQ(out.hostAt(i), 1000 + i) << toString(m);
        for (uint64_t b = 0; b < 2; ++b)
            EXPECT_TRUE(pr.strategy()->isCommittedHost(b)) << toString(m);
    }
}

TEST(PersistStrategyTest, SkippedRegionEndLeavesBlockUncommitted)
{
    for (PersistModel m : kStrategyModels) {
        Device dev;
        NvmCache nvm(dev.mem(), NvmParams{});
        dev.attachNvm(&nvm);
        LaunchConfig cfg(Dim3(2), Dim3(2));
        auto out = ArrayRef<uint32_t>::allocate(dev.mem(), 4);
        LpConfig lpc = LpConfig::scalable();
        lpc.persist = m;
        PersistRuntime pr(dev, lpc, cfg, 2);
        LpContext ctx = pr.context();
        nvm.persistAll();

        // Block 0 commits, block 1 "crashes" before its region end.
        dev.launch(cfg, [&](ThreadCtx &t) {
            PersistAccum acc = makePersistAccum(&ctx);
            uint64_t i = t.globalThreadIdx();
            persistStoreU32(t, &ctx, acc, out, i,
                            static_cast<uint32_t>(i + 1));
            if (t.blockRank() == 0)
                persistRegionEnd(t, &ctx, acc);
        });
        nvm.crash();
        EXPECT_TRUE(pr.strategy()->isCommittedHost(0)) << toString(m);
        EXPECT_FALSE(pr.strategy()->isCommittedHost(1)) << toString(m);
    }
}

TEST(PersistRecoverTest, RecoversACrashMidKernel)
{
    for (PersistModel m : kStrategyModels) {
        Device dev;
        NvmCache nvm(dev.mem(), NvmParams{});
        dev.attachNvm(&nvm);
        LaunchConfig cfg(Dim3(4), Dim3(8));
        auto out = ArrayRef<uint32_t>::allocate(dev.mem(), 32);
        for (uint64_t i = 0; i < 32; ++i)
            out.hostAt(i) = 7; // pre-state the eager log must capture
        LpConfig lpc = LpConfig::scalable();
        lpc.persist = m;
        PersistRuntime pr(dev, lpc, cfg, 2);
        LpContext ctx = pr.context();
        KernelFn kernel = storeKernel(&ctx, out);
        nvm.persistAll();

        nvm.crashAfterStores(20); // mid-grid power failure
        dev.launch(cfg, kernel);
        RecoveryReport rep = persistRecover(dev, cfg, *pr.strategy(),
                                            kernel);
        EXPECT_TRUE(rep.converged) << toString(m);
        EXPECT_GT(rep.blocks_failed, 0u) << toString(m);
        EXPECT_EQ(rep.validate_cycles, 0u) << toString(m);

        nvm.crash(); // the recovered state must itself be durable
        for (uint64_t i = 0; i < 32; ++i)
            EXPECT_EQ(out.hostAt(i), 1000 + i) << toString(m);
        for (uint64_t b = 0; b < 4; ++b)
            EXPECT_TRUE(pr.strategy()->isCommittedHost(b)) << toString(m);
    }
}

TEST(PersistRecoverTest, AbsorbsACrashDuringRecovery)
{
    for (PersistModel m : kStrategyModels) {
        Device dev;
        NvmCache nvm(dev.mem(), NvmParams{});
        dev.attachNvm(&nvm);
        LaunchConfig cfg(Dim3(4), Dim3(8));
        auto out = ArrayRef<uint32_t>::allocate(dev.mem(), 32);
        LpConfig lpc = LpConfig::scalable();
        lpc.persist = m;
        PersistRuntime pr(dev, lpc, cfg, 2);
        LpContext ctx = pr.context();
        KernelFn kernel = storeKernel(&ctx, out);
        nvm.persistAll();

        nvm.crashAfterStores(20);
        dev.launch(cfg, kernel);
        nvm.crash();
        // A second power failure strikes while recovery re-executes.
        nvm.crashAfterStores(6);
        RecoveryReport rep = persistRecover(dev, cfg, *pr.strategy(),
                                            kernel);
        EXPECT_TRUE(rep.converged) << toString(m);
        EXPECT_GE(rep.crashes_survived, 1u) << toString(m);
        nvm.crash();
        for (uint64_t i = 0; i < 32; ++i)
            EXPECT_EQ(out.hostAt(i), 1000 + i) << toString(m);
    }
}

TEST(PersistRecoverTest, EagerRollsBackBeforeReexecuting)
{
    // The undo log must restore the pre-region image before failed
    // blocks re-run; a non-idempotent observer would otherwise see the
    // crash's partial stores. Verify by crashing so that some stores
    // of an uncommitted block persisted, then checking that recovery
    // still converges to the clean result.
    Device dev;
    NvmCache nvm(dev.mem(), NvmParams{});
    dev.attachNvm(&nvm);
    LaunchConfig cfg(Dim3(2), Dim3(4));
    auto out = ArrayRef<uint32_t>::allocate(dev.mem(), 8);
    for (uint64_t i = 0; i < 8; ++i)
        out.hostAt(i) = 40 + static_cast<uint32_t>(i);
    LpConfig lpc = LpConfig::scalable();
    lpc.persist = PersistModel::Eager;
    PersistRuntime pr(dev, lpc, cfg, 2);
    LpContext ctx = pr.context();
    KernelFn kernel = storeKernel(&ctx, out);
    nvm.persistAll();

    // Eager flushes every store, so a mid-kernel cut leaves a prefix
    // of new values durable in an uncommitted region.
    nvm.crashAfterStores(10);
    dev.launch(cfg, kernel);
    nvm.crash();

    uint64_t rolled = pr.strategy()->rollback();
    EXPECT_GT(rolled, 0u);
    // Rolled-back slots are back to the pre-region image.
    for (uint64_t i = 0; i < 8; ++i) {
        uint32_t v = out.hostAt(i);
        EXPECT_TRUE(v == 40 + i || v == 1000 + i)
            << "slot " << i << " holds " << v
            << ", neither pre-region nor committed value";
    }

    RecoveryReport rep = persistRecover(dev, cfg, *pr.strategy(), kernel);
    EXPECT_TRUE(rep.converged);
    nvm.crash();
    for (uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(out.hostAt(i), 1000 + i);
}

} // namespace
} // namespace gpulp
