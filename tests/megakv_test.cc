/**
 * @file
 * MEGA-KV tests: functional insert/search/erase semantics, update in
 * place, bucket-overflow behaviour, LP validation of table mutations,
 * and crash recovery of an insert batch.
 */

#include <vector>

#include <gtest/gtest.h>

#include "workloads/megakv.h"

namespace gpulp {
namespace {

constexpr uint32_t kBatch = 1024;

std::vector<std::pair<uint32_t, uint32_t>>
makePairs(uint32_t n, uint32_t seed = 1)
{
    std::vector<std::pair<uint32_t, uint32_t>> kv;
    kv.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        kv.emplace_back(seed + i * 2654435761u, 5000 + i);
    return kv;
}

TEST(MegaKvTest, InsertThenHostLookupFindsEveryKey)
{
    Device dev;
    MegaKv kv(dev, 1024, kBatch);
    auto pairs = makePairs(kBatch);
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });
    for (const auto &[key, value] : pairs) {
        uint32_t got = 0;
        ASSERT_TRUE(kv.hostLookup(key, &got)) << "key " << key;
        EXPECT_EQ(got, value);
    }
}

TEST(MegaKvTest, SearchKernelReturnsValuesAndZeroForMisses)
{
    Device dev;
    MegaKv kv(dev, 1024, kBatch);
    auto pairs = makePairs(kBatch);
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });

    // Search for every other key; replace the rest with absent keys.
    std::vector<uint32_t> keys(kBatch);
    for (uint32_t i = 0; i < kBatch; ++i)
        keys[i] = (i % 2 == 0) ? pairs[i].first : 0xBAD0000u + i;
    kv.stageKeys(keys);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.searchKernel(t, nullptr); });
    for (uint32_t i = 0; i < kBatch; ++i) {
        if (i % 2 == 0)
            EXPECT_EQ(kv.resultAt(i), pairs[i].second) << i;
        else
            EXPECT_EQ(kv.resultAt(i), 0u) << i;
    }
}

TEST(MegaKvTest, EraseRemovesKeys)
{
    Device dev;
    MegaKv kv(dev, 1024, kBatch);
    auto pairs = makePairs(kBatch);
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });

    std::vector<uint32_t> keys;
    for (const auto &[k, v] : pairs)
        keys.push_back(k);
    kv.stageKeys(keys);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.eraseKernel(t, nullptr); });
    for (const auto &[key, value] : pairs)
        EXPECT_FALSE(kv.hostLookup(key, nullptr)) << key;
}

TEST(MegaKvTest, InsertUpdatesExistingKeyInPlace)
{
    Device dev;
    MegaKv kv(dev, 512, 128);
    auto pairs = makePairs(128);
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });

    // Same keys, new values.
    for (auto &[k, v] : pairs)
        v += 100000;
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });
    for (const auto &[key, value] : pairs) {
        uint32_t got = 0;
        ASSERT_TRUE(kv.hostLookup(key, &got));
        EXPECT_EQ(got, value);
    }
}

TEST(MegaKvTest, ReinsertionIsIdempotent)
{
    // The recovery path re-executes insert blocks; the table must end
    // up identical.
    Device dev;
    MegaKv kv(dev, 512, 128);
    auto pairs = makePairs(128);
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });
    for (const auto &[key, value] : pairs) {
        uint32_t got = 0;
        ASSERT_TRUE(kv.hostLookup(key, &got));
        EXPECT_EQ(got, value);
    }
}

TEST(MegaKvTest, LpInsertCommitsAndValidates)
{
    Device dev;
    MegaKv kv(dev, 1024, kBatch);
    kv.stageInserts(makePairs(kBatch));
    LpRuntime lp(dev, LpConfig::scalable(), kv.launchConfig());
    LpContext ctx = lp.context();
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, &ctx); });

    RecoverySet failed(dev, kv.launchConfig().numBlocks());
    dev.launch(kv.launchConfig(), [&](ThreadCtx &t) {
        kv.validateInserts(t, ctx, failed);
    });
    EXPECT_EQ(failed.failedCount(), 0u);
}

TEST(MegaKvTest, ValidationCatchesLostTableSlot)
{
    Device dev;
    MegaKv kv(dev, 1024, kBatch);
    auto pairs = makePairs(kBatch);
    kv.stageInserts(pairs);
    LpRuntime lp(dev, LpConfig::scalable(), kv.launchConfig());
    LpContext ctx = lp.context();
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, &ctx); });

    // Simulate a lost slot: erase one inserted key behind LP's back
    // (an un-checksummed mutation, like a dropped dirty line).
    uint32_t victim_key = pairs[300].first;
    ASSERT_TRUE(kv.hostLookup(victim_key, nullptr));
    kv.stageKeys(std::vector<uint32_t>(kBatch, victim_key));
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.eraseKernel(t, nullptr); });

    kv.stageInserts(pairs); // restore op arrays for validation
    RecoverySet failed(dev, kv.launchConfig().numBlocks());
    dev.launch(kv.launchConfig(), [&](ThreadCtx &t) {
        kv.validateInserts(t, ctx, failed);
    });
    // Block 300/128 = 2 lost its key.
    EXPECT_GT(failed.failedCount(), 0u);
    EXPECT_TRUE(failed.isFailedHost(300 / MegaKv::kThreads));
}

TEST(MegaKvTest, LpEraseValidates)
{
    Device dev;
    MegaKv kv(dev, 1024, kBatch);
    auto pairs = makePairs(kBatch);
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });

    std::vector<uint32_t> keys;
    for (const auto &[k, v] : pairs)
        keys.push_back(k);
    kv.stageKeys(keys);
    LpRuntime lp(dev, LpConfig::scalable(), kv.launchConfig());
    LpContext ctx = lp.context();
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.eraseKernel(t, &ctx); });

    RecoverySet failed(dev, kv.launchConfig().numBlocks());
    dev.launch(kv.launchConfig(), [&](ThreadCtx &t) {
        kv.validateErases(t, ctx, failed);
    });
    EXPECT_EQ(failed.failedCount(), 0u);

    // Resurrect the keys behind validation's back: the committed
    // erase checksums no longer match, so every block must fail.
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });
    kv.stageKeys(keys);
    failed.clearAll();
    dev.launch(kv.launchConfig(), [&](ThreadCtx &t) {
        kv.validateErases(t, ctx, failed);
    });
    EXPECT_EQ(failed.failedCount(), kv.launchConfig().numBlocks());
}

TEST(MegaKvTest, CrashRecoveryMakesInsertBatchDurable)
{
    Device dev;
    NvmParams nvm_params;
    nvm_params.cache_bytes = 64 * 1024;
    NvmCache nvm(dev.mem(), nvm_params);
    dev.attachNvm(&nvm);

    MegaKv kv(dev, 1024, kBatch);
    auto pairs = makePairs(kBatch);
    kv.stageInserts(pairs);
    LpRuntime lp(dev, LpConfig::scalable(), kv.launchConfig());
    LpContext ctx = lp.context();

    nvm.persistAll();
    nvm.crashAfterStores(400);
    LaunchResult r = dev.launch(kv.launchConfig(), [&](ThreadCtx &t) {
        kv.insertKernel(t, &ctx);
    });
    EXPECT_TRUE(r.crashed);
    nvm.crash();

    lpValidateAndRecover(
        dev, kv.launchConfig(), ctx,
        [&](ThreadCtx &t, RecoverySet &failed) {
            kv.validateInserts(t, ctx, failed);
        },
        [&](ThreadCtx &t, const RecoverySet &failed) {
            if (failed.isFailedHost(t.blockRank()))
                kv.insertKernel(t, &ctx);
        });

    nvm.crash(); // recovery persisted everything
    for (const auto &[key, value] : pairs) {
        uint32_t got = 0;
        ASSERT_TRUE(kv.hostLookup(key, &got)) << key;
        EXPECT_EQ(got, value);
    }
}

TEST(MegaKvTest, TableBytesAccountsKeysAndValues)
{
    Device dev;
    MegaKv kv(dev, 256, 128);
    EXPECT_EQ(kv.tableBytes(), 2ull * 256 * MegaKv::kWays * 4);
}

} // namespace
} // namespace gpulp
