/**
 * @file
 * MEGA-KV tests: functional insert/search/erase semantics, update in
 * place, bucket-overflow behaviour, LP validation of table mutations,
 * and crash recovery of an insert batch.
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/checksum_store.h" // mixHash: probe keys into one bucket
#include "workloads/megakv.h"

namespace gpulp {
namespace {

constexpr uint32_t kBatch = 1024;

std::vector<std::pair<uint32_t, uint32_t>>
makePairs(uint32_t n, uint32_t seed = 1)
{
    std::vector<std::pair<uint32_t, uint32_t>> kv;
    kv.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        kv.emplace_back(seed + i * 2654435761u, 5000 + i);
    return kv;
}

TEST(MegaKvTest, InsertThenHostLookupFindsEveryKey)
{
    Device dev;
    MegaKv kv(dev, 1024, kBatch);
    auto pairs = makePairs(kBatch);
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });
    for (const auto &[key, value] : pairs) {
        uint32_t got = 0;
        ASSERT_TRUE(kv.hostLookup(key, &got)) << "key " << key;
        EXPECT_EQ(got, value);
    }
}

TEST(MegaKvTest, SearchKernelReturnsValuesAndZeroForMisses)
{
    Device dev;
    MegaKv kv(dev, 1024, kBatch);
    auto pairs = makePairs(kBatch);
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });

    // Search for every other key; replace the rest with absent keys.
    std::vector<uint32_t> keys(kBatch);
    for (uint32_t i = 0; i < kBatch; ++i)
        keys[i] = (i % 2 == 0) ? pairs[i].first : 0xBAD0000u + i;
    kv.stageKeys(keys);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.searchKernel(t, nullptr); });
    for (uint32_t i = 0; i < kBatch; ++i) {
        if (i % 2 == 0)
            EXPECT_EQ(kv.resultAt(i), pairs[i].second) << i;
        else
            EXPECT_EQ(kv.resultAt(i), 0u) << i;
    }
}

TEST(MegaKvTest, EraseRemovesKeys)
{
    Device dev;
    MegaKv kv(dev, 1024, kBatch);
    auto pairs = makePairs(kBatch);
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });

    std::vector<uint32_t> keys;
    for (const auto &[k, v] : pairs)
        keys.push_back(k);
    kv.stageKeys(keys);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.eraseKernel(t, nullptr); });
    for (const auto &[key, value] : pairs)
        EXPECT_FALSE(kv.hostLookup(key, nullptr)) << key;
}

TEST(MegaKvTest, InsertUpdatesExistingKeyInPlace)
{
    Device dev;
    MegaKv kv(dev, 512, 128);
    auto pairs = makePairs(128);
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });

    // Same keys, new values.
    for (auto &[k, v] : pairs)
        v += 100000;
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });
    for (const auto &[key, value] : pairs) {
        uint32_t got = 0;
        ASSERT_TRUE(kv.hostLookup(key, &got));
        EXPECT_EQ(got, value);
    }
}

TEST(MegaKvTest, ReinsertionIsIdempotent)
{
    // The recovery path re-executes insert blocks; the table must end
    // up identical.
    Device dev;
    MegaKv kv(dev, 512, 128);
    auto pairs = makePairs(128);
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });
    for (const auto &[key, value] : pairs) {
        uint32_t got = 0;
        ASSERT_TRUE(kv.hostLookup(key, &got));
        EXPECT_EQ(got, value);
    }
}

TEST(MegaKvTest, LpInsertCommitsAndValidates)
{
    Device dev;
    MegaKv kv(dev, 1024, kBatch);
    kv.stageInserts(makePairs(kBatch));
    LpRuntime lp(dev, LpConfig::scalable(), kv.launchConfig());
    LpContext ctx = lp.context();
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, &ctx); });

    RecoverySet failed(dev, kv.launchConfig().numBlocks());
    dev.launch(kv.launchConfig(), [&](ThreadCtx &t) {
        kv.validateInserts(t, ctx, failed);
    });
    EXPECT_EQ(failed.failedCount(), 0u);
}

TEST(MegaKvTest, ValidationCatchesLostTableSlot)
{
    Device dev;
    MegaKv kv(dev, 1024, kBatch);
    auto pairs = makePairs(kBatch);
    kv.stageInserts(pairs);
    LpRuntime lp(dev, LpConfig::scalable(), kv.launchConfig());
    LpContext ctx = lp.context();
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, &ctx); });

    // Simulate a lost slot: erase one inserted key behind LP's back
    // (an un-checksummed mutation, like a dropped dirty line).
    uint32_t victim_key = pairs[300].first;
    ASSERT_TRUE(kv.hostLookup(victim_key, nullptr));
    kv.stageKeys(std::vector<uint32_t>(kBatch, victim_key));
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.eraseKernel(t, nullptr); });

    kv.stageInserts(pairs); // restore op arrays for validation
    RecoverySet failed(dev, kv.launchConfig().numBlocks());
    dev.launch(kv.launchConfig(), [&](ThreadCtx &t) {
        kv.validateInserts(t, ctx, failed);
    });
    // Block 300/128 = 2 lost its key.
    EXPECT_GT(failed.failedCount(), 0u);
    EXPECT_TRUE(failed.isFailedHost(300 / MegaKv::kThreads));
}

TEST(MegaKvTest, LpEraseValidates)
{
    Device dev;
    MegaKv kv(dev, 1024, kBatch);
    auto pairs = makePairs(kBatch);
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });

    std::vector<uint32_t> keys;
    for (const auto &[k, v] : pairs)
        keys.push_back(k);
    kv.stageKeys(keys);
    LpRuntime lp(dev, LpConfig::scalable(), kv.launchConfig());
    LpContext ctx = lp.context();
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.eraseKernel(t, &ctx); });

    RecoverySet failed(dev, kv.launchConfig().numBlocks());
    dev.launch(kv.launchConfig(), [&](ThreadCtx &t) {
        kv.validateErases(t, ctx, failed);
    });
    EXPECT_EQ(failed.failedCount(), 0u);

    // Resurrect the keys behind validation's back: the committed
    // erase checksums no longer match, so every block must fail.
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });
    kv.stageKeys(keys);
    failed.clearAll();
    dev.launch(kv.launchConfig(), [&](ThreadCtx &t) {
        kv.validateErases(t, ctx, failed);
    });
    EXPECT_EQ(failed.failedCount(), kv.launchConfig().numBlocks());
}

TEST(MegaKvTest, CrashRecoveryMakesInsertBatchDurable)
{
    Device dev;
    NvmParams nvm_params;
    nvm_params.cache_bytes = 64 * 1024;
    NvmCache nvm(dev.mem(), nvm_params);
    dev.attachNvm(&nvm);

    MegaKv kv(dev, 1024, kBatch);
    auto pairs = makePairs(kBatch);
    kv.stageInserts(pairs);
    LpRuntime lp(dev, LpConfig::scalable(), kv.launchConfig());
    LpContext ctx = lp.context();

    nvm.persistAll();
    nvm.crashAfterStores(400);
    LaunchResult r = dev.launch(kv.launchConfig(), [&](ThreadCtx &t) {
        kv.insertKernel(t, &ctx);
    });
    EXPECT_TRUE(r.crashed);
    nvm.crash();

    lpValidateAndRecover(
        dev, kv.launchConfig(), ctx,
        [&](ThreadCtx &t, RecoverySet &failed) {
            kv.validateInserts(t, ctx, failed);
        },
        [&](ThreadCtx &t, const RecoverySet &failed) {
            if (failed.isFailedHost(t.blockRank()))
                kv.insertKernel(t, &ctx);
        });

    nvm.crash(); // recovery persisted everything
    for (const auto &[key, value] : pairs) {
        uint32_t got = 0;
        ASSERT_TRUE(kv.hostLookup(key, &got)) << key;
        EXPECT_EQ(got, value);
    }
}

TEST(MegaKvTest, TableBytesAccountsKeysAndValues)
{
    Device dev;
    MegaKv kv(dev, 256, 128);
    EXPECT_EQ(kv.tableBytes(), 2ull * 256 * MegaKv::kWays * 4);
}

// ---------------------------------------------------------------------
// Per-op status reporting and drop-honest LP checksums
// ---------------------------------------------------------------------

TEST(MegaKvTest, FullBucketDropIsAppMissNotPersistencyFailure)
{
    // Regression for the silent-drop misclassification: one bucket,
    // 128 distinct keys — exactly kWays land, the rest are dropped.
    // Before the post-state checksum fix, every dropped insert folded
    // its operand value, so validation flagged the block as a
    // persistency failure; now a drop folds the 0 validation will
    // recompute and must pass cleanly while the status array reports
    // the app-level misses.
    Device dev;
    MegaKv kv(dev, /*buckets=*/1, /*batch_ops=*/128);
    std::vector<std::pair<uint32_t, uint32_t>> pairs;
    for (uint32_t i = 0; i < 128; ++i)
        pairs.emplace_back(i + 1, 5000 + i);
    kv.stageInserts(pairs);

    LpRuntime lp(dev, LpConfig::scalable(), kv.launchConfig());
    LpContext ctx = lp.context();
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, &ctx); });

    uint32_t stored = 0, dropped = 0;
    for (uint32_t i = 0; i < 128; ++i) {
        const uint32_t status = kv.statusAt(i);
        if (status == kKvMiss)
            ++dropped;
        else
            ++stored;
        // A drop leaves the key absent; a store leaves it present.
        EXPECT_EQ(kv.hostLookup(pairs[i].first, nullptr),
                  status != kKvMiss)
            << i;
    }
    EXPECT_EQ(stored, MegaKv::kWays);
    EXPECT_EQ(dropped, 128 - MegaKv::kWays);

    RecoverySet failed(dev, kv.launchConfig().numBlocks());
    dev.launch(kv.launchConfig(), [&](ThreadCtx &t) {
        kv.validateInserts(t, ctx, failed);
    });
    EXPECT_EQ(failed.failedCount(), 0u)
        << "full-bucket drops misclassified as persistency failures";
}

TEST(MegaKvTest, SearchStatusDistinguishesStoredZeroFromAbsent)
{
    // A stored value of 0 and "key absent" both return result 0; only
    // the status bit tells a true miss from a zero hit.
    Device dev;
    MegaKv kv(dev, 1024, 128);
    std::vector<std::pair<uint32_t, uint32_t>> pairs;
    for (uint32_t i = 0; i < 128; ++i)
        pairs.emplace_back(i + 1, 0u); // every stored value is 0
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });

    std::vector<uint32_t> keys(128);
    for (uint32_t i = 0; i < 128; ++i)
        keys[i] = (i % 2 == 0) ? pairs[i].first : 0xBAD0000u + i;
    kv.stageKeys(keys);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.searchKernel(t, nullptr); });
    for (uint32_t i = 0; i < 128; ++i) {
        EXPECT_EQ(kv.resultAt(i), 0u) << i;
        EXPECT_EQ(kv.statusAt(i),
                  (i % 2 == 0) ? uint32_t{kKvHit} : uint32_t{kKvMiss})
            << i;
    }
}

TEST(MegaKvTest, StatusReportsHitUpdatedAndEraseOutcomes)
{
    Device dev;
    MegaKv kv(dev, 1024, 128);
    auto pairs = makePairs(128);
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });
    for (uint32_t i = 0; i < 128; ++i)
        EXPECT_EQ(kv.statusAt(i), uint32_t{kKvHit}) << i;

    for (auto &[k, v] : pairs)
        v += 7;
    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });
    for (uint32_t i = 0; i < 128; ++i)
        EXPECT_EQ(kv.statusAt(i), uint32_t{kKvUpdated}) << i;

    std::vector<uint32_t> keys;
    for (const auto &[k, v] : pairs)
        keys.push_back(k);
    kv.stageKeys(keys);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.eraseKernel(t, nullptr); });
    for (uint32_t i = 0; i < 128; ++i)
        EXPECT_EQ(kv.statusAt(i), uint32_t{kKvHit}) << i;

    kv.stageKeys(keys); // all gone now
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.eraseKernel(t, nullptr); });
    for (uint32_t i = 0; i < 128; ++i)
        EXPECT_EQ(kv.statusAt(i), uint32_t{kKvMiss}) << i;
}

TEST(MegaKvTest, InsertSearchEraseRoundTripUnderLp)
{
    Device dev;
    MegaKv kv(dev, 1024, 128);
    auto pairs = makePairs(128);
    std::vector<uint32_t> keys;
    for (const auto &[k, v] : pairs)
        keys.push_back(k);

    LpRuntime lp_insert(dev, LpConfig::scalable(), kv.launchConfig());
    LpRuntime lp_search(dev, LpConfig::scalable(), kv.launchConfig());
    LpRuntime lp_erase(dev, LpConfig::scalable(), kv.launchConfig());
    LpContext insert_ctx = lp_insert.context();
    LpContext search_ctx = lp_search.context();
    LpContext erase_ctx = lp_erase.context();

    kv.stageInserts(pairs);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.insertKernel(t, &insert_ctx); });
    RecoverySet failed(dev, kv.launchConfig().numBlocks());
    dev.launch(kv.launchConfig(), [&](ThreadCtx &t) {
        kv.validateInserts(t, insert_ctx, failed);
    });
    EXPECT_EQ(failed.failedCount(), 0u);

    kv.stageKeys(keys);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.searchKernel(t, &search_ctx); });
    for (uint32_t i = 0; i < 128; ++i) {
        EXPECT_EQ(kv.statusAt(i), uint32_t{kKvHit}) << i;
        EXPECT_EQ(kv.resultAt(i), pairs[i].second) << i;
    }

    kv.stageKeys(keys);
    dev.launch(kv.launchConfig(),
               [&](ThreadCtx &t) { kv.eraseKernel(t, &erase_ctx); });
    failed.clearAll();
    dev.launch(kv.launchConfig(), [&](ThreadCtx &t) {
        kv.validateErases(t, erase_ctx, failed);
    });
    EXPECT_EQ(failed.failedCount(), 0u);
    for (uint32_t key : keys)
        EXPECT_FALSE(kv.hostLookup(key, nullptr)) << key;
}

TEST(MegaKvTest, EraseFreedSlotDoesNotDuplicateLaterWayKey)
{
    // Regression for the double-slot bug the serving audit exposed:
    // with the key sitting in a later way and an erase-freed slot in
    // an earlier one, a re-insert must update in place, not claim the
    // empty way — otherwise the key occupies two slots and survives a
    // single erase as a phantom.
    constexpr uint32_t kBuckets = 64;
    Device dev;
    MegaKv kv(dev, kBuckets, 128);

    // Nine keys that share one bucket, found by probing the same hash
    // the table uses.
    std::vector<uint32_t> shared;
    uint32_t target = ~0u;
    for (uint32_t k = 1; shared.size() < 9; ++k) {
        const uint32_t b = mixHash(k, 0x6b76u) % kBuckets;
        if (target == ~0u)
            target = b;
        if (b == target)
            shared.push_back(k);
    }
    // Pad keys from other buckets, fresh every call.
    uint32_t pad_cursor = 1u << 20;
    auto pads = [&](uint32_t n) {
        std::vector<uint32_t> out;
        while (out.size() < n) {
            const uint32_t k = pad_cursor++;
            if (mixHash(k, 0x6b76u) % kBuckets != target)
                out.push_back(k);
        }
        return out;
    };
    auto insertOne = [&](uint32_t key, uint32_t value) {
        std::vector<std::pair<uint32_t, uint32_t>> batch;
        batch.emplace_back(key, value);
        for (uint32_t pad : pads(127))
            batch.emplace_back(pad, 1u);
        kv.stageInserts(batch);
        dev.launch(kv.launchConfig(),
                   [&](ThreadCtx &t) { kv.insertKernel(t, nullptr); });
    };
    auto eraseOne = [&](uint32_t key) {
        std::vector<uint32_t> batch{key};
        for (uint32_t pad : pads(127))
            batch.push_back(pad + (1u << 27)); // absent keys
        kv.stageKeys(batch);
        dev.launch(kv.launchConfig(),
                   [&](ThreadCtx &t) { kv.eraseKernel(t, nullptr); });
    };

    // Fill the bucket's ways 0..7 in insertion order.
    for (uint32_t w = 0; w < MegaKv::kWays; ++w)
        insertOne(shared[w], 100 + w);
    EXPECT_FALSE(kv.hostLookup(shared[8], nullptr)); // bucket is full

    eraseOne(shared[0]);          // way 0 is now empty
    insertOne(shared[3], 999);    // must update way 3, not claim way 0
    uint32_t got = 0;
    ASSERT_TRUE(kv.hostLookup(shared[3], &got));
    EXPECT_EQ(got, 999u);
    eraseOne(shared[3]);          // one erase must fully remove the key
    EXPECT_FALSE(kv.hostLookup(shared[3], nullptr))
        << "key duplicated across ways: erase left a phantom copy";
}

} // namespace
} // namespace gpulp
