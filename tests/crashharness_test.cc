/**
 * @file
 * End-to-end smoke tests for the kill-9 crash harness: a victim
 * process genuinely dies by SIGKILL mid-store and a fresh process
 * recovers the workload — from the persist log on the file device,
 * from re-setup state on the in-memory device.
 */

#include <gtest/gtest.h>

#include "harness/crashharness.h"

namespace gpulp {
namespace {

CrashHarnessOptions
smokeOptions()
{
    CrashHarnessOptions opts;
    opts.workload = "tmm";
    opts.scale = 0.004;
    opts.grid_points = 2;
    opts.random_points = 1;
    opts.num_workers = 1;
    return opts;
}

TEST(CrashHarnessTest, FileDeviceSurvivesRealSigkill)
{
    CrashHarnessOptions opts = smokeOptions();
    opts.file_device = true;
    CrashHarnessResult r = runCrashHarness(opts);
    ASSERT_EQ(r.trials.size(), 3u);
    uint64_t replayed = 0;
    for (const CrashTrialResult &t : r.trials) {
        EXPECT_TRUE(t.killed_by_sigkill)
            << "victim at store " << t.crash_point
            << " did not die by SIGKILL";
        EXPECT_EQ(t.false_passes, 0u);
        EXPECT_TRUE(t.converged);
        EXPECT_TRUE(t.output_matches_golden);
        EXPECT_TRUE(t.verify_ok);
        EXPECT_GT(t.log_bytes_at_death, 0u);
        replayed += t.entries_replayed;
    }
    // The log must have fed recovery something: at minimum the durable
    // pre-kernel baseline image.
    EXPECT_GT(replayed, 0u);
    EXPECT_TRUE(r.passed());
}

TEST(CrashHarnessTest, MemDeviceLosesEverythingButStillRecovers)
{
    CrashHarnessOptions opts = smokeOptions();
    opts.file_device = false;
    CrashHarnessResult r = runCrashHarness(opts);
    ASSERT_EQ(r.trials.size(), 3u);
    for (const CrashTrialResult &t : r.trials) {
        EXPECT_TRUE(t.killed_by_sigkill);
        // Total loss: every block's work is gone, validation must
        // flag all of them and recovery re-executes the whole grid.
        EXPECT_EQ(t.corrupt_blocks, r.num_blocks);
        EXPECT_EQ(t.false_passes, 0u);
        EXPECT_EQ(t.entries_replayed, 0u);
        EXPECT_TRUE(t.converged);
        EXPECT_TRUE(t.output_matches_golden);
        EXPECT_TRUE(t.verify_ok);
    }
    EXPECT_TRUE(r.passed());
}

TEST(CrashHarnessTest, DeterministicAcrossRuns)
{
    CrashHarnessOptions opts = smokeOptions();
    opts.grid_points = 1;
    opts.random_points = 1;
    CrashHarnessResult a = runCrashHarness(opts);
    CrashHarnessResult b = runCrashHarness(opts);
    ASSERT_EQ(a.trials.size(), b.trials.size());
    EXPECT_EQ(a.golden_stores, b.golden_stores);
    for (size_t i = 0; i < a.trials.size(); ++i) {
        EXPECT_EQ(a.trials[i].crash_point, b.trials[i].crash_point);
        EXPECT_EQ(a.trials[i].corrupt_blocks, b.trials[i].corrupt_blocks);
        EXPECT_EQ(a.trials[i].entries_replayed,
                  b.trials[i].entries_replayed);
    }
}

} // namespace
} // namespace gpulp
