/**
 * @file
 * Additional simulator-API coverage: 64-bit atomics, float atomics,
 * atomicMax, signed/64-bit shuffles, stall charging, deadlock
 * detection, shared-memory exhaustion, and the fused dual-checksum
 * reduction extension.
 */

#include <gtest/gtest.h>

#include "core/reduce.h"
#include "sim/device.h"

namespace gpulp {
namespace {

TEST(ExecExtraTest, AtomicCAS64RoundTrips)
{
    Device dev;
    auto cell = ArrayRef<uint64_t>::allocate(dev.mem(), 1);
    cell.hostAt(0) = 0xAABBCCDDEEFF0011ull;
    uint64_t seen = 0;
    dev.launch(LaunchConfig(Dim3(1), Dim3(1)), [&](ThreadCtx &t) {
        seen = t.atomicCAS64(cell.addrOf(0), 0xAABBCCDDEEFF0011ull,
                             0x1122334455667788ull);
    });
    EXPECT_EQ(seen, 0xAABBCCDDEEFF0011ull);
    EXPECT_EQ(cell.hostAt(0), 0x1122334455667788ull);
}

TEST(ExecExtraTest, AtomicCAS64FailsOnMismatch)
{
    Device dev;
    auto cell = ArrayRef<uint64_t>::allocate(dev.mem(), 1);
    cell.hostAt(0) = 5;
    dev.launch(LaunchConfig(Dim3(1), Dim3(1)), [&](ThreadCtx &t) {
        t.atomicCAS64(cell.addrOf(0), 6, 7);
    });
    EXPECT_EQ(cell.hostAt(0), 5u);
}

TEST(ExecExtraTest, AtomicExch64SwapsWholeWord)
{
    Device dev;
    auto cell = ArrayRef<uint64_t>::allocate(dev.mem(), 1);
    cell.hostAt(0) = 111;
    uint64_t old = 0;
    dev.launch(LaunchConfig(Dim3(1), Dim3(1)), [&](ThreadCtx &t) {
        old = t.atomicExch64(cell.addrOf(0), 222);
    });
    EXPECT_EQ(old, 111u);
    EXPECT_EQ(cell.hostAt(0), 222u);
}

TEST(ExecExtraTest, AtomicAddFAccumulatesFloats)
{
    Device dev;
    auto cell = ArrayRef<float>::allocate(dev.mem(), 1);
    dev.launch(LaunchConfig(Dim3(4), Dim3(32)), [&](ThreadCtx &t) {
        t.atomicAddF(cell.addrOf(0), 0.5f);
    });
    EXPECT_EQ(cell.hostAt(0), 64.0f);
}

TEST(ExecExtraTest, AtomicMaxKeepsLargest)
{
    Device dev;
    auto cell = ArrayRef<uint32_t>::allocate(dev.mem(), 1);
    dev.launch(LaunchConfig(Dim3(8), Dim3(16)), [&](ThreadCtx &t) {
        t.atomicMax(cell.addrOf(0),
                    static_cast<uint32_t>(t.globalThreadIdx() * 7 % 101));
    });
    uint32_t expect = 0;
    for (uint32_t i = 0; i < 128; ++i)
        expect = std::max(expect, i * 7 % 101);
    EXPECT_EQ(cell.hostAt(0), expect);
}

TEST(ExecExtraTest, SignedShuffleKeepsSign)
{
    Device dev;
    auto out = ArrayRef<int32_t>::allocate(dev.mem(), 32);
    dev.launch(LaunchConfig(Dim3(1), Dim3(32)), [&](ThreadCtx &t) {
        int32_t v = -static_cast<int32_t>(t.laneId()) - 1;
        t.store(out, t.laneId(), t.shflDownI(v, 2));
    });
    for (uint32_t lane = 0; lane < 30; ++lane)
        EXPECT_EQ(out.hostAt(lane), -static_cast<int32_t>(lane) - 3);
}

TEST(ExecExtraTest, Shuffle64CarriesFullWidth)
{
    Device dev;
    auto out = ArrayRef<uint64_t>::allocate(dev.mem(), 32);
    dev.launch(LaunchConfig(Dim3(1), Dim3(32)), [&](ThreadCtx &t) {
        uint64_t v = (uint64_t{t.laneId()} << 40) | 0xABCDEFull;
        t.store(out, t.laneId(), t.shflDown64(v, 1));
    });
    for (uint32_t lane = 0; lane < 31; ++lane)
        EXPECT_EQ(out.hostAt(lane),
                  (uint64_t{lane + 1} << 40) | 0xABCDEFull);
}

TEST(ExecExtraTest, StallChargesRawCycles)
{
    Device dev;
    Cycles before = 0, after = 0;
    dev.launch(LaunchConfig(Dim3(1), Dim3(1)), [&](ThreadCtx &t) {
        before = t.now();
        t.stall(1234);
        after = t.now();
    });
    EXPECT_EQ(after - before, 1234u);
}

TEST(ExecExtraDeathTest, MismatchedBarrierDeadlockIsDetected)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            Device dev;
            dev.launch(LaunchConfig(Dim3(1), Dim3(2)), [&](ThreadCtx &t) {
                // Thread 0 waits at a barrier thread 1 never reaches,
                // and thread 1 waits at a shuffle thread 0 never joins.
                if (t.flatThreadIdx() == 0)
                    t.syncthreads();
                else
                    t.shflDown(1u, 1);
            });
        },
        "deadlocked");
}

TEST(ExecExtraDeathTest, SharedMemoryExhaustionPanics)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            DeviceParams params;
            params.shared_bytes = 1024;
            Device dev(params);
            dev.launch(LaunchConfig(Dim3(1), Dim3(1)), [&](ThreadCtx &t) {
                t.sharedArray<float>(0, 4096);
            });
        },
        "shared memory exhausted");
}

TEST(ExecExtraTest, FusedReductionMatchesTwoShuffleReduction)
{
    Device dev;
    for (uint32_t threads : {1u, 32u, 63u, 256u}) {
        Checksums fused{}, classic{};
        dev.launch(LaunchConfig(Dim3(1), Dim3(threads)),
                   [&](ThreadCtx &t) {
                       Checksums local{t.flatThreadIdx() * 3 + 1,
                                       ~t.flatThreadIdx()};
                       Checksums f = blockReduceParallelFused(t, local);
                       Checksums c = blockReduceParallel(
                           t, local, ChecksumKind::ModularParity);
                       if (t.flatThreadIdx() == 0) {
                           fused = f;
                           classic = c;
                       }
                   });
        EXPECT_EQ(fused, classic) << threads << " threads";
    }
}

TEST(ExecExtraTest, FusedReductionIsCheaperThanTwoShuffles)
{
    Device dev;
    auto run = [&](bool fused) {
        return dev
            .launch(LaunchConfig(Dim3(4), Dim3(256)),
                    [&](ThreadCtx &t) {
                        Checksums local{t.flatThreadIdx(), 7u};
                        if (fused)
                            blockReduceParallelFused(t, local);
                        else
                            blockReduceParallel(
                                t, local, ChecksumKind::ModularParity);
                    })
            .cycles;
    };
    EXPECT_LT(run(true), run(false));
}

TEST(ExecExtraTest, ConfigLabelsAreStable)
{
    EXPECT_EQ(configLabel(LpConfig::scalable()), "array+shfl+lockfree");
    LpConfig cfg = LpConfig::naive(TableKind::Cuckoo);
    cfg.lock = LockMode::LockBased;
    cfg.reduction = ReductionKind::SequentialGlobal;
    EXPECT_EQ(configLabel(cfg), "cuckoo+noshfl+lockbased");
    cfg.reduction = ReductionKind::ParallelFused;
    EXPECT_EQ(configLabel(cfg), "cuckoo+fused+lockbased");
    EXPECT_STREQ(toString(ChecksumKind::ModularParity), "modular+parity");
    EXPECT_STREQ(toString(LockMode::NoAtomic), "noatomic");
}

} // namespace
} // namespace gpulp
