/**
 * @file
 * Tests for the directive-based programming support (Sec. VI): pragma
 * parsing, the statement slicer, source-to-source translation of the
 * paper's Listings 5-6 into instrumented + check-and-recovery code
 * (Listing 7), and the lpcuda runtime semantics the generated code
 * targets.
 */

#include <gtest/gtest.h>

#include "lpdsl/lpcuda_runtime.h"
#include "lpdsl/slicer.h"
#include "lpdsl/translator.h"

namespace gpulp::lpdsl {
namespace {

// ---------------------------------------------------------------------
// Pragma parsing
// ---------------------------------------------------------------------

TEST(PragmaTest, ParsesInitDirective)
{
    std::string error;
    auto p = parsePragmaLine(
        "#pragma nvm lpcuda_init(checksumMM, grid.x * grid.y, 1)", 4,
        &error);
    ASSERT_TRUE(p.has_value()) << error;
    EXPECT_EQ(p->kind, PragmaKind::Init);
    EXPECT_EQ(p->line, 4u);
    EXPECT_EQ(p->tableId(), "checksumMM");
    EXPECT_EQ(p->elemCount(), "grid.x * grid.y");
    EXPECT_EQ(p->checksumsPerElem(), "1");
}

TEST(PragmaTest, ParsesChecksumDirectiveWithMultipleKeys)
{
    std::string error;
    auto p = parsePragmaLine(
        "  #pragma nvm lpcuda_checksum(\"+\", tab, blockIdx.x, "
        "blockIdx.y)",
        0, &error);
    ASSERT_TRUE(p.has_value()) << error;
    EXPECT_EQ(p->kind, PragmaKind::Checksum);
    EXPECT_EQ(p->checksumOp(), "\"+\"");
    EXPECT_EQ(p->checksumTable(), "tab");
    auto keys = p->keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "blockIdx.x");
    EXPECT_EQ(keys[1], "blockIdx.y");
}

TEST(PragmaTest, IgnoresForeignPragmasAndCode)
{
    std::string error;
    EXPECT_FALSE(parsePragmaLine("#pragma once", 0, &error).has_value());
    EXPECT_TRUE(error.empty());
    EXPECT_FALSE(parsePragmaLine("int x = 3;", 0, &error).has_value());
    EXPECT_TRUE(error.empty());
    EXPECT_FALSE(
        parsePragmaLine("#pragma omp parallel for", 0, &error).has_value());
    EXPECT_TRUE(error.empty());
}

TEST(PragmaTest, ReportsUnknownNvmDirective)
{
    std::string error;
    EXPECT_FALSE(
        parsePragmaLine("#pragma nvm lpcuda_frobnicate(x)", 2, &error)
            .has_value());
    EXPECT_NE(error.find("unknown nvm directive"), std::string::npos);
}

TEST(PragmaTest, ReportsTooFewArguments)
{
    std::string error;
    EXPECT_FALSE(parsePragmaLine("#pragma nvm lpcuda_init(tab)", 0, &error)
                     .has_value());
    EXPECT_NE(error.find("at least"), std::string::npos);
}

TEST(PragmaTest, SplitTopLevelArgsRespectsNesting)
{
    auto args = splitTopLevelArgs("a, f(b, c), d[e, 2], \"x,y\"");
    ASSERT_EQ(args.size(), 4u);
    EXPECT_EQ(args[0], "a");
    EXPECT_EQ(args[1], "f(b, c)");
    EXPECT_EQ(args[2], "d[e, 2]");
    EXPECT_EQ(args[3], "\"x,y\"");
}

// ---------------------------------------------------------------------
// Slicer
// ---------------------------------------------------------------------

TEST(SlicerTest, SplitStatementsOnTopLevelSemicolons)
{
    auto statements =
        splitStatements("int a = 1; for (i = 0; i < n; ++i) { b += a; } "
                        "c = a + b;");
    ASSERT_EQ(statements.size(), 2u);
    EXPECT_EQ(statements[0], "int a = 1");
    // The for-loop (no top-level ';') coalesces with the next
    // statement — coarse but conservative for slicing.
    EXPECT_NE(statements[1].find("c = a + b"), std::string::npos);
}

TEST(SlicerTest, ExtractsIdentifiersNotKeywords)
{
    auto ids = extractIdentifiers("int c = wB * BLOCK_SIZE * by + bx");
    EXPECT_TRUE(ids.count("c"));
    EXPECT_TRUE(ids.count("wB"));
    EXPECT_TRUE(ids.count("BLOCK_SIZE"));
    EXPECT_TRUE(ids.count("by"));
    EXPECT_TRUE(ids.count("bx"));
    EXPECT_FALSE(ids.count("int"));
}

TEST(SlicerTest, AnalyzeFindsDeclarationTarget)
{
    Statement s = analyzeStatement("int bx = blockIdx.x");
    EXPECT_EQ(s.assigned, "bx");
    EXPECT_TRUE(s.uses.count("blockIdx"));
}

TEST(SlicerTest, AnalyzeFindsIndexedArrayTarget)
{
    Statement s = analyzeStatement("C[c + wB * ty + tx] = Csub");
    EXPECT_EQ(s.assigned, "C");
    EXPECT_TRUE(s.uses.count("Csub"));
    EXPECT_TRUE(s.uses.count("c"));
}

TEST(SlicerTest, AnalyzeIgnoresComparisons)
{
    Statement s = analyzeStatement("if (a == b) x");
    EXPECT_TRUE(s.assigned.empty());
}

TEST(SlicerTest, BackwardSliceKeepsOnlyNeededStatements)
{
    std::vector<Statement> statements = {
        analyzeStatement("int bx = blockIdx.x"),
        analyzeStatement("int unused = 42"),
        analyzeStatement("int by = blockIdx.y"),
        analyzeStatement("int c = wB * by + bx"),
    };
    auto slice = backwardSlice(statements,
                               extractIdentifiers("C[c + tx]"));
    ASSERT_EQ(slice.size(), 3u);
    EXPECT_EQ(slice[0].assigned, "bx");
    EXPECT_EQ(slice[1].assigned, "by");
    EXPECT_EQ(slice[2].assigned, "c");
}

TEST(SlicerTest, SliceFollowsTransitiveDependencies)
{
    std::vector<Statement> statements = {
        analyzeStatement("int a = base"),
        analyzeStatement("int b = a * 2"),
        analyzeStatement("int c = b + 1"),
    };
    auto slice = backwardSlice(statements, {"c"});
    ASSERT_EQ(slice.size(), 3u);
}

// ---------------------------------------------------------------------
// Translator (golden checks on the paper's sample)
// ---------------------------------------------------------------------

TEST(TranslatorTest, LowersThePaperSample)
{
    auto result = translateSource(paperMatrixMulSample());
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.init_directives, 1u);
    EXPECT_EQ(result.checksum_directives, 1u);

    // Init lowered to a runtime call at the launch site (Listing 5).
    EXPECT_NE(result.instrumented.find(
                  "gpulp::lpcuda::initChecksumTable(\"checksumMM\", "
                  "(grid.x * grid.y), (1))"),
              std::string::npos);

    // The protected store folds into the checksum (Listing 6).
    EXPECT_NE(result.instrumented.find("auto __lp_val = (Csub)"),
              std::string::npos);
    EXPECT_NE(result.instrumented.find(
                  "C[c + wB * ty + tx] = __lp_val"),
              std::string::npos);
    EXPECT_NE(result.instrumented.find(
                  "updateChecksum(\"+\", checksumMM, __lp_val, "
                  "blockIdx.x, blockIdx.y)"),
              std::string::npos);

    // No pragma survives in the output.
    EXPECT_EQ(result.instrumented.find("#pragma nvm"), std::string::npos);
}

TEST(TranslatorTest, GeneratesCheckAndRecoveryKernel)
{
    auto result = translateSource(paperMatrixMulSample());
    ASSERT_TRUE(result.ok);

    // Listing 7's shape: cr<Kernel> with the original signature...
    EXPECT_NE(result.recovery.find("__global__ void crMatrixMulCUDA("
                                   "float *C, float *A, float *B, "
                                   "int wA, int wB)"),
              std::string::npos);
    // ...the pointer-computation slice...
    EXPECT_NE(result.recovery.find("int c = wB * BLOCK_SIZE * by"),
              std::string::npos);
    // ...validation against the checksum table with the same keys...
    EXPECT_NE(result.recovery.find(
                  "validate(C[c + wB * ty + tx], \"+\", checksumMM, "
                  "blockIdx.x, blockIdx.y)"),
              std::string::npos);
    // ...and the recovery invocation with the kernel's arguments.
    EXPECT_NE(result.recovery.find("recoveryMatrixMulCUDA(C, A, B, wA, "
                                   "wB)"),
              std::string::npos);
}

TEST(TranslatorTest, ChecksumOutsideKernelIsDiagnosed)
{
    auto result = translateSource(
        "void host() {\n"
        "#pragma nvm lpcuda_checksum(\"+\", tab, k)\n"
        "    x[i] = y;\n"
        "}\n");
    EXPECT_FALSE(result.ok);
    ASSERT_FALSE(result.diagnostics.empty());
    EXPECT_NE(result.diagnostics[0].find("outside a __global__ kernel"),
              std::string::npos);
}

TEST(TranslatorTest, ChecksumBeforeNonAssignmentIsDiagnosed)
{
    auto result = translateSource(
        "__global__ void k(int *x) {\n"
        "#pragma nvm lpcuda_checksum(\"+\", tab, k)\n"
        "    return;\n"
        "}\n");
    EXPECT_FALSE(result.ok);
    ASSERT_FALSE(result.diagnostics.empty());
    EXPECT_NE(result.diagnostics[0].find("must precede an assignment"),
              std::string::npos);
}

TEST(TranslatorTest, PassesThroughUnannotatedSource)
{
    std::string source = "int main() { return 0; }\n";
    auto result = translateSource(source);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.instrumented, source);
    EXPECT_EQ(result.init_directives, 0u);
}

// ---------------------------------------------------------------------
// lpcuda runtime semantics
// ---------------------------------------------------------------------

TEST(LpcudaRuntimeTest, ModularFoldAccumulates)
{
    auto table = lpcuda::initChecksumTable("t", 8, 1);
    lpcuda::updateChecksum("+", table, 10u, 0);
    lpcuda::updateChecksum("+", table, 32u, 0);
    EXPECT_EQ(table->stored({0}), 42u);
}

TEST(LpcudaRuntimeTest, ParityFoldXors)
{
    auto table = lpcuda::initChecksumTable("t", 8, 1);
    lpcuda::updateChecksum("^", table, 0b1100u, 1, 2);
    lpcuda::updateChecksum("^", table, 0b1010u, 1, 2);
    EXPECT_EQ(table->stored({1, 2}), 0b0110u);
}

TEST(LpcudaRuntimeTest, KeysAreIndependent)
{
    auto table = lpcuda::initChecksumTable("t", 8, 1);
    lpcuda::updateChecksum("+", table, 1u, 0);
    lpcuda::updateChecksum("+", table, 2u, 1);
    EXPECT_EQ(table->stored({0}), 1u);
    EXPECT_EQ(table->stored({1}), 2u);
    EXPECT_EQ(table->keyCount(), 2u);
}

TEST(LpcudaRuntimeTest, FloatFoldsUseOrderedInt)
{
    auto table = lpcuda::initChecksumTable("t", 8, 1);
    lpcuda::updateChecksum("+", table, 3.5f, 7);
    EXPECT_EQ(table->stored({7}), 1080033280u); // Fig. 2
}

TEST(LpcudaRuntimeTest, ValidateMatchesIntactValue)
{
    auto table = lpcuda::initChecksumTable("t", 8, 1);
    lpcuda::updateChecksum("+", table, 1.25f, 3);
    EXPECT_TRUE(lpcuda::validate(1.25f, "+", table, 3));
    EXPECT_FALSE(lpcuda::validate(1.26f, "+", table, 3));
}

} // namespace
} // namespace gpulp::lpdsl
