/**
 * @file
 * Workload-suite tests: functional correctness of every benchmark
 * kernel against its host reference, LP checksum commitment and
 * validation, per-benchmark crash recovery, and the paper-metadata
 * invariants (Table III block counts).
 */

#include <string>

#include <gtest/gtest.h>

#include "harness/driver.h"
#include "workloads/workload.h"

namespace gpulp {
namespace {

constexpr double kTestScale = 0.015;

class EveryWorkload : public ::testing::TestWithParam<std::string>
{
  protected:
    static DeviceParams
    params()
    {
        DeviceParams p;
        p.arena_bytes = 128ull * 1024 * 1024;
        return p;
    }
};

TEST_P(EveryWorkload, BaselineMatchesHostReference)
{
    Device dev(params());
    auto w = makeWorkload(GetParam(), kTestScale);
    w->setup(dev);
    runBaseline(dev, *w);
    std::string why;
    EXPECT_TRUE(w->verify(&why)) << why;
}

TEST_P(EveryWorkload, LpRunMatchesHostReferenceAndCommitsAllBlocks)
{
    Device dev(params());
    auto w = makeWorkload(GetParam(), kTestScale);
    w->setup(dev);
    LpRuntime lp(dev, LpConfig::scalable(), w->launchConfig());
    runWithLp(dev, *w, lp);

    std::string why;
    EXPECT_TRUE(w->verify(&why)) << why;

    // Every block must have committed a checksum.
    for (uint64_t b = 0; b < w->launchConfig().numBlocks(); ++b) {
        Checksums cs;
        EXPECT_TRUE(lp.store().lookup(static_cast<uint32_t>(b), &cs))
            << "block " << b << " missing its checksum";
    }
    EXPECT_EQ(lp.store().stats().inserts, w->launchConfig().numBlocks());
}

TEST_P(EveryWorkload, LpRunWorksWithHashedTablesToo)
{
    Device dev(params());
    auto w = makeWorkload(GetParam(), kTestScale);
    w->setup(dev);
    for (TableKind table : {TableKind::QuadProbe, TableKind::Cuckoo}) {
        LpConfig cfg = LpConfig::naive(table);
        cfg.load_factor = table == TableKind::QuadProbe
                              ? w->quadLoadFactor()
                              : w->cuckooLoadFactor();
        LpRuntime lp(dev, cfg, w->launchConfig());
        runWithLp(dev, *w, lp);
        std::string why;
        EXPECT_TRUE(w->verify(&why)) << toString(table) << ": " << why;
        Checksums cs;
        EXPECT_TRUE(lp.store().lookup(0, &cs)) << toString(table);
    }
}

TEST_P(EveryWorkload, ValidationPassesOnIntactDataOnly)
{
    Device dev(params());
    auto w = makeWorkload(GetParam(), kTestScale);
    w->setup(dev);
    LpRuntime lp(dev, LpConfig::scalable(), w->launchConfig());
    LpContext ctx = lp.context();
    runWithLp(dev, *w, lp);

    RecoverySet failed(dev, w->launchConfig().numBlocks());
    dev.launch(w->launchConfig(), [&](ThreadCtx &t) {
        w->validation(t, ctx, failed);
    });
    EXPECT_EQ(failed.failedCount(), 0u)
        << "intact data must validate clean";

    // Corrupt one committed checksum: exactly that block must fail.
    uint64_t victim = w->launchConfig().numBlocks() / 2;
    Checksums cs;
    ASSERT_TRUE(lp.store().lookup(static_cast<uint32_t>(victim), &cs));
    dev.launch(LaunchConfig(Dim3(1), Dim3(1)), [&](ThreadCtx &t) {
        lp.store().insert(t, static_cast<uint32_t>(victim),
                          Checksums{cs.sum ^ 0xdead, cs.parity});
    });
    failed.clearAll();
    dev.launch(w->launchConfig(), [&](ThreadCtx &t) {
        w->validation(t, ctx, failed);
    });
    EXPECT_EQ(failed.failedCount(), 1u);
    EXPECT_TRUE(failed.isFailedHost(victim));
}

TEST_P(EveryWorkload, CrashRecoveryRestoresExactResult)
{
    Device dev(params());
    NvmParams nvm_params;
    nvm_params.cache_bytes = 128 * 1024;
    NvmCache nvm(dev.mem(), nvm_params);
    dev.attachNvm(&nvm);

    auto w = makeWorkload(GetParam(), kTestScale);
    w->setup(dev);
    LpRuntime lp(dev, LpConfig::scalable(), w->launchConfig());
    LpContext ctx = lp.context();

    nvm.persistAll();
    nvm.crashAfterStores(150);
    LaunchResult r = dev.launch(w->launchConfig(), [&](ThreadCtx &t) {
        w->kernel(t, &ctx);
    });
    EXPECT_TRUE(r.crashed);
    nvm.crash();

    RecoveryReport report = lpValidateAndRecover(
        dev, w->launchConfig(), ctx,
        [&](ThreadCtx &t, RecoverySet &failed) {
            w->validation(t, ctx, failed);
        },
        [&](ThreadCtx &t, const RecoverySet &failed) {
            if (failed.isFailedHost(t.blockRank()))
                w->kernel(t, &ctx);
        });
    EXPECT_GT(report.blocks_failed, 0u);

    std::string why;
    EXPECT_TRUE(w->verify(&why)) << why;

    // And the recovered result is durable.
    nvm.crash();
    EXPECT_TRUE(w->verify(&why)) << "persisted image: " << why;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryWorkload,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(WorkloadMetaTest, PaperScaleBlockCountsMatchTableIII)
{
    // Table III, last column — the block counts behind every
    // scalability result. launchConfig() needs no setup, so this is
    // cheap even at scale 1.
    const uint64_t expected[] = {16384, 512,   65536, 1536,
                                 128640, 42,   128,   1024};
    const auto &names = workloadNames();
    for (size_t i = 0; i < names.size(); ++i) {
        auto w = makeWorkload(names[i], 1.0);
        EXPECT_EQ(w->launchConfig().numBlocks(), expected[i])
            << names[i];
    }
}

TEST(WorkloadMetaTest, BottlenecksMatchTableI)
{
    EXPECT_STREQ(makeWorkload("spmv", 0.01)->bottleneck(), "Bandwidth");
    EXPECT_STREQ(makeWorkload("sad", 0.01)->bottleneck(), "Bandwidth");
    EXPECT_STREQ(makeWorkload("histo", 0.05)->bottleneck(), "Bandwidth");
    EXPECT_STREQ(makeWorkload("tmm", 0.01)->bottleneck(),
                 "Inst throughput");
    EXPECT_STREQ(makeWorkload("tpacf", 0.01)->bottleneck(),
                 "Inst throughput");
    EXPECT_STREQ(makeWorkload("cutcp", 0.05)->bottleneck(),
                 "Inst throughput");
    EXPECT_STREQ(makeWorkload("mri-q", 0.01)->bottleneck(),
                 "Inst throughput");
    EXPECT_STREQ(makeWorkload("mri-gridding", 0.01)->bottleneck(),
                 "Inst throughput");
}

TEST(WorkloadMetaTest, UnknownWorkloadNameDies)
{
    EXPECT_EXIT(makeWorkload("nonesuch", 1.0),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(HarnessTest, OverheadOfComputesFractions)
{
    EXPECT_DOUBLE_EQ(overheadOf(1000, 1081), 0.081);
    EXPECT_DOUBLE_EQ(overheadOf(1000, 1000), 0.0);
    EXPECT_LT(overheadOf(1000, 990), 0.0);
}

TEST(HarnessTest, BenchMeasuresBaselineOnceAndOverheads)
{
    WorkloadBench bench("mri-q", 0.02);
    Cycles base1 = bench.baselineCycles();
    Cycles base2 = bench.baselineCycles();
    EXPECT_EQ(base1, base2);

    MeasuredRun array = bench.measure(LpConfig::scalable());
    EXPECT_EQ(array.baseline_cycles, base1);
    EXPECT_GT(array.lp_cycles, 0u);
    EXPECT_GT(array.overhead, -0.01);
    EXPECT_EQ(array.num_blocks,
              bench.workload().launchConfig().numBlocks());
    // 8 payload bytes + 1 out-of-band valid byte per block slot.
    EXPECT_EQ(array.lp_footprint_bytes, array.num_blocks * 9);
}

TEST(HarnessTest, LockBasedCostsMoreThanLockFree)
{
    WorkloadBench bench("mri-gridding", 0.01);
    LpConfig lockfree = LpConfig::naive(TableKind::QuadProbe);
    LpConfig lockbased = lockfree;
    lockbased.lock = LockMode::LockBased;
    EXPECT_GT(bench.measure(lockbased).lp_cycles,
              bench.measure(lockfree).lp_cycles);
}

TEST(HarnessTest, SequentialReductionCostsMoreThanParallel)
{
    WorkloadBench bench("spmv", 0.02);
    LpConfig shfl = LpConfig::naive(TableKind::QuadProbe);
    LpConfig noshfl = shfl;
    noshfl.reduction = ReductionKind::SequentialGlobal;
    EXPECT_GT(bench.measure(noshfl).lp_cycles,
              bench.measure(shfl).lp_cycles);
}

TEST(HarnessTest, GlobalArrayBeatsHashedTables)
{
    WorkloadBench bench("mri-gridding", 0.01);
    MeasuredRun array = bench.measure(LpConfig::scalable());
    MeasuredRun quad = bench.measure(LpConfig::naive(TableKind::QuadProbe));
    MeasuredRun cuckoo = bench.measure(LpConfig::naive(TableKind::Cuckoo));
    EXPECT_LT(array.lp_cycles, quad.lp_cycles);
    EXPECT_LT(array.lp_cycles, cuckoo.lp_cycles);
    EXPECT_EQ(array.store_stats.collisions, 0u);
}

} // namespace
} // namespace gpulp
