/**
 * @file
 * Tests for the v2 bucketized checksum-table backends
 * (docs/CHECKSUM_TABLES.md): two-choice insertion at >90% load factor,
 * displacement and stash coverage, erase, and the optimistic variant's
 * torn-read defenses — the seqlock version re-check, host-side
 * odd-version-as-miss, and the stuck-odd seizure path that a crash
 * mid-critical-section leaves behind.
 */

#include <algorithm>
#include <cstring>

#include <gtest/gtest.h>

#include "analysis/explorer.h"
#include "core/checksum_store.h"
#include "harness/faultcampaign.h"

namespace gpulp {

/** White-box access to Bucket2OptTable internals (friend of the class)
 *  so tests can construct the exact memory states a crash leaves. */
struct Bucket2OptTestPeer {
    static uint64_t
    bucketOf(const Bucket2OptTable &t, uint32_t key, uint32_t choice)
    {
        return t.bucketOf(key, choice);
    }

    static Addr
    versionAddr(const Bucket2OptTable &t, uint64_t bucket)
    {
        return t.versionAddr(bucket);
    }

    static Addr
    keyAddr(const Bucket2OptTable &t, uint64_t bucket, uint32_t slot)
    {
        return t.keyAddr(bucket, slot);
    }
};

namespace {

LaunchResult
runSingleThread(Device &dev, const std::function<void(ThreadCtx &)> &body)
{
    return dev.launch(LaunchConfig(Dim3(1), Dim3(1)), body);
}

uint32_t
readVersion(Device &dev, const Bucket2OptTable &table, uint64_t bucket)
{
    uint32_t v;
    std::memcpy(&v, dev.mem().raw(Bucket2OptTestPeer::versionAddr(
                        table, bucket)),
                4);
    return v;
}

void
writeVersion(Device &dev, const Bucket2OptTable &table, uint64_t bucket,
             uint32_t v)
{
    std::memcpy(dev.mem().raw(Bucket2OptTestPeer::versionAddr(table,
                                                              bucket)),
                &v, 4);
}

// ---------------------------------------------------------------------
// Bucket2Table
// ---------------------------------------------------------------------

TEST(BucketStoreTest, RoundTripsEveryKeyAtNinetyFivePercentLoad)
{
    // The regime the WarpSpeed line of work targets and the paper's
    // open-addressed tables cannot reach: every key present, every
    // payload intact, at 95% load.
    constexpr uint32_t kKeys = 2048;
    Device dev;
    Bucket2Table store(dev, kKeys, LockMode::LockFree, 0.95);
    runSingleThread(dev, [&](ThreadCtx &t) {
        for (uint32_t key = 0; key < kKeys; ++key)
            store.insert(t, key, Checksums{key * 5, key ^ 0xa5a5a5a5u});
    });
    for (uint32_t key = 0; key < kKeys; ++key) {
        Checksums cs;
        ASSERT_TRUE(store.lookup(key, &cs)) << "key " << key;
        EXPECT_EQ(cs.sum, key * 5);
        EXPECT_EQ(cs.parity, key ^ 0xa5a5a5a5u);
    }
    EXPECT_EQ(store.stats().inserts, kKeys);
    // At 95% load both candidate buckets of some keys must have filled,
    // so the displacement path is genuinely covered.
    EXPECT_GT(store.stats().displacements, 0u);
}

TEST(BucketStoreTest, OptimisticRoundTripsEveryKeyAtNinetyFivePercentLoad)
{
    constexpr uint32_t kKeys = 2048;
    Device dev;
    Bucket2OptTable store(dev, kKeys, 0.95);
    runSingleThread(dev, [&](ThreadCtx &t) {
        for (uint32_t key = 0; key < kKeys; ++key)
            store.insert(t, key, Checksums{key * 5, key ^ 0xa5a5a5a5u});
    });
    for (uint32_t key = 0; key < kKeys; ++key) {
        Checksums cs;
        ASSERT_TRUE(store.lookup(key, &cs)) << "key " << key;
        EXPECT_EQ(cs.sum, key * 5);
        EXPECT_EQ(cs.parity, key ^ 0xa5a5a5a5u);
    }
    EXPECT_GT(store.stats().displacements, 0u);
    // Quiescent table: every version word must be even (no claim leaked
    // by tryPlaceLocked or the two-bucket displacement).
    uint64_t num_buckets = (store.capacity() -
                            std::max<uint64_t>(64, kKeys / 64)) /
                           Bucket2Table::kBucketWidth;
    for (uint64_t b = 0; b < num_buckets; ++b)
        ASSERT_EQ(readVersion(dev, store, b) % 2, 0u) << "bucket " << b;
}

TEST(BucketStoreTest, EraseRemovesOnlyTheTargetKey)
{
    Device dev;
    Bucket2Table store(dev, 256, LockMode::LockFree, 0.9);
    runSingleThread(dev, [&](ThreadCtx &t) {
        for (uint32_t key = 0; key < 256; ++key)
            store.insert(t, key, Checksums{key, ~key});
    });
    EXPECT_TRUE(store.erase(17));
    EXPECT_FALSE(store.erase(17)) << "second erase must report absent";
    Checksums cs;
    EXPECT_FALSE(store.lookup(17, &cs));
    for (uint32_t key = 0; key < 256; ++key) {
        if (key == 17)
            continue;
        ASSERT_TRUE(store.lookup(key, &cs)) << "key " << key;
        EXPECT_EQ(cs.sum, key);
    }
    // An erased slot is reusable.
    runSingleThread(dev, [&](ThreadCtx &t) {
        store.insert(t, 17, Checksums{99, 100});
    });
    ASSERT_TRUE(store.lookup(17, &cs));
    EXPECT_EQ(cs.sum, 99u);
}

TEST(BucketStoreTest, OptimisticEraseRemovesOnlyTheTargetKey)
{
    Device dev;
    Bucket2OptTable store(dev, 256, 0.9);
    runSingleThread(dev, [&](ThreadCtx &t) {
        for (uint32_t key = 0; key < 256; ++key)
            store.insert(t, key, Checksums{key, ~key});
    });
    EXPECT_TRUE(store.erase(42));
    Checksums cs;
    EXPECT_FALSE(store.lookup(42, &cs));
    for (uint32_t key = 0; key < 256; ++key) {
        if (key == 42)
            continue;
        ASSERT_TRUE(store.lookup(key, &cs)) << "key " << key;
    }
}

TEST(BucketStoreTest, StashCatchesDisplacementExhaustion)
{
    // A tiny table at 100% nominal load leaves zero slack: some keys
    // must exhaust their displacement budget and land in the stash,
    // and they must still be found (the stash is scanned fully).
    constexpr uint32_t kKeys = 512;
    Device dev;
    Bucket2Table store(dev, kKeys, LockMode::LockFree, 1.0);
    runSingleThread(dev, [&](ThreadCtx &t) {
        for (uint32_t key = 0; key < kKeys; ++key)
            store.insert(t, key, Checksums{key, key});
    });
    for (uint32_t key = 0; key < kKeys; ++key) {
        Checksums cs;
        ASSERT_TRUE(store.lookup(key, &cs)) << "key " << key;
    }
}

TEST(BucketStoreTest, CapacityAndFootprintAccounting)
{
    Device dev;
    Bucket2Table store(dev, 1000, LockMode::LockFree, 0.9);
    // ceil(1000 / (0.9 * 8)) buckets (rounded up to odd) plus the
    // 64-slot-minimum stash, 16 B per entry.
    EXPECT_GE(store.capacity(), 1000u);
    EXPECT_EQ(store.footprintBytes(), store.capacity() * 16);

    Bucket2OptTable opt(dev, 1000, 0.9);
    // Same layout plus one 4 B version word per bucket.
    uint64_t buckets =
        (opt.capacity() - 64) / Bucket2Table::kBucketWidth;
    EXPECT_EQ(opt.footprintBytes(), opt.capacity() * 16 + buckets * 4);
}

TEST(BucketStoreTest, TwoChoicePlacementBalancesLoadVsSingleChoice)
{
    // Sanity on the power-of-two-choices claim: with both choices in
    // play, collisions per insert at 90% load stay well below one.
    constexpr uint32_t kKeys = 4096;
    Device dev;
    Bucket2Table store(dev, kKeys, LockMode::LockFree, 0.9);
    runSingleThread(dev, [&](ThreadCtx &t) {
        for (uint32_t key = 0; key < kKeys; ++key)
            store.insert(t, key, Checksums{key, key});
    });
    double per_insert =
        static_cast<double>(store.stats().collisions) /
        static_cast<double>(store.stats().inserts);
    EXPECT_LT(per_insert, 1.0);
}

// ---------------------------------------------------------------------
// Bucket2OptTable torn-read defenses
// ---------------------------------------------------------------------

/**
 * Regression for the classic seqlock torn-read bug. A crash that
 * unwinds a writer mid-bucket persists an ODD version word next to
 * half-written slot bytes. A lookup that ignored version parity would
 * return the torn payload as valid — a false-pass, the one failure
 * mode LP cannot tolerate (Sec. III). The correct behaviour is to
 * treat the bucket as suspect and miss, which merely re-executes the
 * region (a benign false-fail).
 */
TEST(OptimisticStoreTest, TornPayloadNeverObserved)
{
    Device dev;
    Bucket2OptTable store(dev, 128, 0.9);
    runSingleThread(dev, [&](ThreadCtx &t) {
        store.insert(t, 7, Checksums{0x1111, 0x2222});
    });
    Checksums cs;
    ASSERT_TRUE(store.lookup(7, &cs));
    ASSERT_EQ(cs.sum, 0x1111u);

    // Construct the crash-torn state: key 7's bucket mid-write — odd
    // version, payload half-updated to garbage.
    uint64_t b = Bucket2OptTestPeer::bucketOf(store, 7, 0);
    uint32_t v = readVersion(dev, store, b);
    ASSERT_EQ(v % 2, 0u) << "quiescent bucket must hold an even version";
    writeVersion(dev, store, b, v + 1);
    for (uint32_t s = 0; s < Bucket2OptTable::kBucketWidth; ++s) {
        uint32_t stored;
        std::memcpy(&stored,
                    dev.mem().raw(
                        Bucket2OptTestPeer::keyAddr(store, b, s)),
                    4);
        if (stored == 7) {
            uint32_t garbage = 0xdeadbeef;
            std::memcpy(dev.mem().raw(Bucket2OptTestPeer::keyAddr(
                            store, b, s)) +
                            4,
                        &garbage, 4);
        }
    }

    // Host lookup: the torn bucket is suspect -> miss, never garbage.
    EXPECT_FALSE(store.lookup(7, &cs))
        << "odd-version bucket returned a (possibly torn) payload";

    // Device probe: bounded retries, then the same suspect-as-miss.
    bool found = true;
    runSingleThread(dev, [&](ThreadCtx &t) {
        Checksums out;
        found = store.probe(t, 7, &out);
    });
    EXPECT_FALSE(found);
    EXPECT_GT(store.stats().opt_retries, 0u);
}

/**
 * Recovery re-executes the region whose checksum went missing and
 * re-inserts its key. The insert path must seize the stuck-odd version
 * (no live writer exists after a crash — the simulator's cooperative
 * scheduler never unwinds one mid-claim except through SimCrash), roll
 * it forward to even, and leave the bucket consistent.
 */
TEST(OptimisticStoreTest, InsertSeizesCrashStuckOddVersion)
{
    Device dev;
    Bucket2OptTable store(dev, 128, 0.9);
    uint64_t b = Bucket2OptTestPeer::bucketOf(store, 7, 0);
    uint32_t v = readVersion(dev, store, b);
    writeVersion(dev, store, b, v + 1); // crash-orphaned claim

    uint64_t retries_before = store.stats().opt_retries;
    runSingleThread(dev, [&](ThreadCtx &t) {
        store.insert(t, 7, Checksums{0x3333, 0x4444});
    });
    EXPECT_GT(store.stats().opt_retries, retries_before)
        << "seizing a stuck-odd version must count an optimistic retry";

    Checksums cs;
    ASSERT_TRUE(store.lookup(7, &cs));
    EXPECT_EQ(cs.sum, 0x3333u);
    EXPECT_EQ(cs.parity, 0x4444u);
    EXPECT_EQ(readVersion(dev, store, b) % 2, 0u)
        << "bucket must be quiescent (even) after the insert";
}

TEST(OptimisticStoreTest, ClearResetsVersionsAndStats)
{
    Device dev;
    Bucket2OptTable store(dev, 64, 0.9);
    uint64_t b = Bucket2OptTestPeer::bucketOf(store, 3, 0);
    writeVersion(dev, store, b, 5); // stuck odd
    runSingleThread(dev, [&](ThreadCtx &t) {
        store.insert(t, 3, Checksums{1, 2});
    });
    store.clear();
    EXPECT_EQ(readVersion(dev, store, b), 0u);
    EXPECT_EQ(store.stats().inserts, 0u);
    EXPECT_EQ(store.stats().opt_retries, 0u);
    Checksums cs;
    EXPECT_FALSE(store.lookup(3, &cs));
}

// ---------------------------------------------------------------------
// Harness integration: fault campaign + schedule explorer cells
// ---------------------------------------------------------------------

TEST(BucketStoreTest, FaultCampaignSmokeCellPerBackend)
{
    // One campaign cell per new backend: injected crash points must
    // classify with zero false-passes (no silent corruption) and the
    // recovered output must match golden, same gate as the paper's
    // three designs.
    for (TableKind table : {TableKind::Bucket2, TableKind::Bucket2Opt}) {
        CampaignOptions opts;
        opts.scale = 0.004;
        opts.workloads = {"tmm"};
        opts.tables = {table};
        opts.grid_points = 4;
        opts.random_points = 2;
        CampaignResult result = runFaultCampaign(opts);
        EXPECT_TRUE(result.passed()) << toString(table);
        ASSERT_EQ(result.cells.size(), 1u);
        EXPECT_EQ(result.cells[0].falsePasses(), 0u) << toString(table);
    }
}

TEST(OptimisticStoreTest, ExplorerCrashScheduleCrossingForcesRetryPath)
{
    // Crossing explored schedules with crash-at-store injection is what
    // actually reaches the optimistic-retry machinery end to end: a
    // crash unwinds an in-flight insert, leaving the odd version the
    // recovery lookup and re-insert then have to handle.
    ExplorerOptions opts;
    opts.scale = 0.004;
    opts.schedules = 4;
    opts.workloads = {"tmm"};
    opts.policies = {PolicyKind::SeededRandom};
    opts.table = TableKind::Bucket2Opt;
    opts.crash_points = 3;
    opts.crash_schedules = 2;
    ExplorerResult result = runScheduleExploration(opts);
    EXPECT_TRUE(result.passed());
    for (const ExplorerCellResult &cell : result.cells) {
        EXPECT_GT(cell.crash_trials, 0u);
        EXPECT_EQ(cell.false_passes, 0u);
        EXPECT_TRUE(cell.violations.empty())
            << (cell.violations.empty() ? "" : cell.violations[0]);
    }
}

} // namespace
} // namespace gpulp
