/**
 * @file
 * Tests for thread-block fusion (Sec. IV-A): correctness at every
 * fusion factor, region-count bookkeeping, insert-pressure reduction,
 * and crash recovery at fused granularity.
 */

#include <gtest/gtest.h>

#include "core/fusion.h"
#include "core/runtime.h"
#include "workloads/workload.h" // overheadOf

namespace gpulp {
namespace {

/** Fixture: out[i] = 7*i + 3 over a logical grid of 24 x 16 threads. */
struct FusedFixture {
    static constexpr uint32_t kThreads = 16;
    static constexpr uint32_t kLogicalBlocks = 24;

    explicit FusedFixture(Device &dev)
        : out(ArrayRef<uint32_t>::allocate(
              dev.mem(), uint64_t{kLogicalBlocks} * kThreads))
    {
    }

    FusedKernelFn
    kernel()
    {
        return [this](ThreadCtx &t, uint64_t logical, ChecksumAccum *acc) {
            uint64_t i = logical * kThreads + t.flatThreadIdx();
            uint32_t v = static_cast<uint32_t>(7 * i + 3);
            t.store(out, i, v);
            if (acc)
                acc->protectU32(t, v);
        };
    }

    FusedKernelFn
    revalidate()
    {
        return [this](ThreadCtx &t, uint64_t logical, ChecksumAccum *acc) {
            uint64_t i = logical * kThreads + t.flatThreadIdx();
            acc->protectU32(t, t.load(out, i));
        };
    }

    bool
    correct() const
    {
        for (uint64_t i = 0; i < out.size(); ++i) {
            if (out.hostAt(i) != 7 * i + 3)
                return false;
        }
        return true;
    }

    ArrayRef<uint32_t> out;
};

class FusionFactors : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(FusionFactors, FusedLaunchComputesCorrectResult)
{
    const uint32_t fuse = GetParam();
    Device dev;
    FusedFixture fx(dev);
    FusedGrid grid(LaunchConfig(Dim3(FusedFixture::kLogicalBlocks),
                                Dim3(FusedFixture::kThreads)),
                   fuse);
    EXPECT_EQ(grid.numRegions(),
              (FusedFixture::kLogicalBlocks + fuse - 1) / fuse);

    LpRuntime lp(dev, LpConfig::scalable(), grid.physicalConfig());
    LpContext ctx = lp.context();
    grid.launch(dev, &ctx, fx.kernel());
    EXPECT_TRUE(fx.correct());

    // One commit per region, not per logical block.
    EXPECT_EQ(lp.store().stats().inserts, grid.numRegions());
    for (uint64_t r = 0; r < grid.numRegions(); ++r) {
        Checksums cs;
        EXPECT_TRUE(lp.store().lookup(static_cast<uint32_t>(r), &cs));
    }
}

TEST_P(FusionFactors, ValidationPassesThenCatchesCorruption)
{
    const uint32_t fuse = GetParam();
    Device dev;
    FusedFixture fx(dev);
    FusedGrid grid(LaunchConfig(Dim3(FusedFixture::kLogicalBlocks),
                                Dim3(FusedFixture::kThreads)),
                   fuse);
    LpRuntime lp(dev, LpConfig::scalable(), grid.physicalConfig());
    LpContext ctx = lp.context();
    grid.launch(dev, &ctx, fx.kernel());

    RecoverySet failed(dev, grid.numRegions());
    grid.validate(dev, ctx, fx.revalidate(), failed);
    EXPECT_EQ(failed.failedCount(), 0u);

    // Corrupt one output in logical block 5; region 5/fuse must fail.
    fx.out.hostAt(5 * FusedFixture::kThreads + 2) = 0xBAD;
    failed.clearAll();
    grid.validate(dev, ctx, fx.revalidate(), failed);
    EXPECT_EQ(failed.failedCount(), 1u);
    EXPECT_TRUE(failed.isFailedHost(5 / fuse));
}

TEST_P(FusionFactors, CrashRecoveryAtFusedGranularity)
{
    const uint32_t fuse = GetParam();
    Device dev;
    NvmParams nvm_params;
    nvm_params.cache_bytes = 16 * 1024;
    NvmCache nvm(dev.mem(), nvm_params);
    dev.attachNvm(&nvm);

    FusedFixture fx(dev);
    FusedGrid grid(LaunchConfig(Dim3(FusedFixture::kLogicalBlocks),
                                Dim3(FusedFixture::kThreads)),
                   fuse);
    LpRuntime lp(dev, LpConfig::scalable(), grid.physicalConfig());
    LpContext ctx = lp.context();

    nvm.persistAll();
    nvm.crashAfterStores(100);
    (void)grid.launch(dev, &ctx, fx.kernel());
    nvm.crash();

    RecoverySet failed(dev, grid.numRegions());
    grid.validate(dev, ctx, fx.revalidate(), failed);
    EXPECT_GT(failed.failedCount(), 0u);
    grid.recover(dev, ctx, fx.kernel(), failed);
    if (dev.nvm())
        dev.nvm()->persistAll();

    EXPECT_TRUE(fx.correct());
    nvm.crash(); // durable too
    EXPECT_TRUE(fx.correct());
}

INSTANTIATE_TEST_SUITE_P(Factors, FusionFactors,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 24u));

TEST(FusionTest, FusionReducesInsertPressure)
{
    // The Sec. IV-A trade-off, timing side: fewer commits => lower LP
    // cost for tiny logical blocks.
    auto overhead = [](uint32_t fuse) {
        Device dev;
        LaunchConfig logical(Dim3(512), Dim3(32));
        auto out = ArrayRef<uint32_t>::allocate(dev.mem(), 512 * 32);
        FusedGrid grid(logical, fuse);
        FusedKernelFn body = [&](ThreadCtx &t, uint64_t logical_block,
                                 ChecksumAccum *acc) {
            uint64_t i = logical_block * 32 + t.flatThreadIdx();
            t.compute(60);
            t.store(out, i, 1u);
            if (acc)
                acc->protectU32(t, 1u);
        };
        Cycles base = grid.launch(dev, nullptr, body).cycles;
        LpConfig cfg = LpConfig::naive(TableKind::QuadProbe);
        LpRuntime lp(dev, cfg, grid.physicalConfig());
        LpContext ctx = lp.context();
        Cycles with_lp = grid.launch(dev, &ctx, body).cycles;
        return overheadOf(base, with_lp);
    };
    EXPECT_GT(overhead(1), overhead(8));
}

} // namespace
} // namespace gpulp
